// Kernel variants + runtime dispatch for tensor/simd.h.
//
// Layout: one anonymous-namespace block per ISA (scalar always; avx2 behind
// __x86_64__ with per-function target attributes so the baseline build needs
// no -mavx2; neon behind __aarch64__ where it is baseline). A KernelTable of
// function pointers per ISA; dispatch picks a table once from CPUID + the
// LOGCL_SIMD env flag and caches it in an atomic (SetSimdEnabled swaps it).
//
// This translation unit is compiled with -ffp-contract=off (see
// src/CMakeLists.txt): the bitwise-parity contract in simd.h requires every
// multiply-accumulate to round twice (mul, then add), and the AVX2/NEON
// variants use separate mul/add intrinsics — never fused-multiply-add — so
// the compiler must not contract the scalar variants either.

#include "tensor/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/runtime_config.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define LOGCL_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define LOGCL_SIMD_NEON 1
#endif

#include "common/parallel.h"
#include "tensor/buffer_pool.h"

namespace logcl {
namespace simd {
namespace {

#if defined(LOGCL_SIMD_X86)
#define LOGCL_TARGET_AVX2 __attribute__((target("avx2")))
#endif

// Every kernel with per-ISA variants, as one table of function pointers.
// `matmul_rows_nt` is null in SIMD tables: the driver then materialises B^T
// once and reuses `matmul_rows_nn`, which is bitwise-equal to the scalar
// dot-product kernel (same per-element product sequence, ascending reduction
// index, single zero-initialised accumulator).
struct KernelTable {
  void (*add)(const float*, const float*, float*, int64_t);
  void (*sub)(const float*, const float*, float*, int64_t);
  void (*mul)(const float*, const float*, float*, int64_t);
  void (*accumulate)(const float*, float*, int64_t);
  void (*mul_accumulate)(const float*, const float*, float*, int64_t);
  void (*axpy)(float, const float*, float*, int64_t);
  void (*scale)(const float*, float, float*, int64_t);
  void (*add_scalar)(const float*, float, float*, int64_t);
  void (*relu)(const float*, float*, int64_t);
  void (*relu_backward)(const float*, const float*, float*, int64_t);
  // Fresh-grad variants (see simd.h): dst[i] = 0.0f + contribution, the
  // bitwise equivalent of zero-fill + the accumulate kernel above.
  void (*accumulate_fresh)(const float*, float*, int64_t);
  void (*mul_accumulate_fresh)(const float*, const float*, float*, int64_t);
  void (*axpy_fresh)(float, const float*, float*, int64_t);
  void (*relu_backward_fresh)(const float*, const float*, float*, int64_t);
  float (*row_max)(const float*, int64_t);
  void (*matmul_rows_nn)(const float*, const float*, float*, int64_t, int64_t,
                         int64_t, int64_t, int64_t);
  void (*matmul_rows_nt)(const float*, const float*, float*, int64_t, int64_t,
                         int64_t, int64_t, int64_t);
  void (*matmul_rows_tn)(const float*, const float*, float*, int64_t, int64_t,
                         int64_t, int64_t, int64_t);
  void (*matmul_tile)(const float*, int64_t, const float*, int64_t, float*,
                      int64_t, int64_t, int64_t, int64_t);
  int32_t (*dot_i8)(const int8_t*, const int8_t*, int64_t);
  float (*dot_bf16)(const uint16_t*, const float*, int64_t);
  void (*score_rows_i8)(const int8_t*, const float*, const int8_t*, float,
                        int64_t, int64_t, float*);
  void (*score_rows_bf16)(const uint16_t*, const float*, int64_t, int64_t,
                          float*);
};

// ---------------------------------------------------------------------------
// Scalar variants. These define the canonical per-element operation orders
// every SIMD variant must reproduce bit-for-bit (fp32) or exactly (integer).
// The matmul bodies are the blocked kernels that lived in tensor/ops.cc
// before this layer existed, restricted to an output-row range so the
// drivers below own the ParallelFor sharding.
// ---------------------------------------------------------------------------
namespace scalar {

void Add(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void Sub(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void Mul(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void Accumulate(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

void MulAccumulate(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += a[i] * b[i];
}

void Axpy(float s, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += s * x[i];
}

void Scale(const float* x, float s, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = s * x[i];
}

void AddScalar(const float* x, float s, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] + s;
}

void Relu(const float* x, float* out, int64_t n) {
  // x > 0 ? x : +0, matching vmaxps/vmaxq lane semantics exactly (including
  // relu(-0) == +0).
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ReluBackward(const float* x, const float* g, float* gx, int64_t n) {
  for (int64_t i = 0; i < n; ++i) gx[i] += x[i] > 0.0f ? g[i] : 0.0f;
}

// The explicit 0.0f + term in the fresh kernels is not dead code: it
// normalises -0.0 contributions to +0.0 exactly as accumulating into a
// zeroed buffer does (the compiler must keep it under IEEE semantics).
void AccumulateFresh(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = 0.0f + x[i];
}

void MulAccumulateFresh(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = 0.0f + a[i] * b[i];
}

void AxpyFresh(float s, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = 0.0f + s * x[i];
}

void ReluBackwardFresh(const float* x, const float* g, float* gx, int64_t n) {
  for (int64_t i = 0; i < n; ++i) gx[i] = 0.0f + (x[i] > 0.0f ? g[i] : 0.0f);
}

float RowMax(const float* x, int64_t n) {
  float m = -std::numeric_limits<float>::infinity();
  for (int64_t i = 0; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void MatMulRowsNN(const float* a, const float* b, float* c, int64_t /*m*/,
                  int64_t k, int64_t n, int64_t r0, int64_t r1) {
  float acc[kTileRows][kTileCols];
  for (int64_t j0 = 0; j0 < n; j0 += kTileCols) {
    const int64_t jn = std::min(kTileCols, n - j0);
    for (int64_t i0 = r0; i0 < r1; i0 += kTileRows) {
      const int64_t im = std::min(kTileRows, r1 - i0);
      for (int64_t r = 0; r < im; ++r) {
        for (int64_t j = 0; j < jn; ++j) acc[r][j] = 0.0f;
      }
      for (int64_t l = 0; l < k; ++l) {
        const float* brow = b + l * n + j0;
        for (int64_t r = 0; r < im; ++r) {
          float av = a[(i0 + r) * k + l];
          float* arow = acc[r];
          for (int64_t j = 0; j < jn; ++j) arow[j] += av * brow[j];
        }
      }
      for (int64_t r = 0; r < im; ++r) {
        float* crow = c + (i0 + r) * n + j0;
        for (int64_t j = 0; j < jn; ++j) crow[j] += acc[r][j];
      }
    }
  }
}

// Square micro-tile for the direct dot-product NT kernel.
constexpr int64_t kDotTile = 4;

void MatMulRowsNT(const float* a, const float* b, float* c, int64_t /*m*/,
                  int64_t n, int64_t k, int64_t r0, int64_t r1) {
  float acc[kDotTile][kDotTile];
  for (int64_t i0 = r0; i0 < r1; i0 += kDotTile) {
    const int64_t im = std::min(kDotTile, r1 - i0);
    for (int64_t j0 = 0; j0 < k; j0 += kDotTile) {
      const int64_t jm = std::min(kDotTile, k - j0);
      for (int64_t r = 0; r < im; ++r) {
        for (int64_t s = 0; s < jm; ++s) acc[r][s] = 0.0f;
      }
      for (int64_t l = 0; l < n; ++l) {
        for (int64_t s = 0; s < jm; ++s) {
          float bv = b[(j0 + s) * n + l];
          for (int64_t r = 0; r < im; ++r) {
            acc[r][s] += a[(i0 + r) * n + l] * bv;
          }
        }
      }
      for (int64_t r = 0; r < im; ++r) {
        float* crow = c + (i0 + r) * k + j0;
        for (int64_t s = 0; s < jm; ++s) crow[s] += acc[r][s];
      }
    }
  }
}

void MatMulRowsTN(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, int64_t r0, int64_t r1) {
  float acc[kTileRows][kTileCols];
  for (int64_t j0 = 0; j0 < n; j0 += kTileCols) {
    const int64_t jn = std::min(kTileCols, n - j0);
    for (int64_t i0 = r0; i0 < r1; i0 += kTileRows) {
      const int64_t im = std::min(kTileRows, r1 - i0);
      for (int64_t r = 0; r < im; ++r) {
        for (int64_t j = 0; j < jn; ++j) acc[r][j] = 0.0f;
      }
      for (int64_t l = 0; l < m; ++l) {
        const float* brow = b + l * n + j0;
        const float* acol = a + l * k + i0;
        for (int64_t r = 0; r < im; ++r) {
          float av = acol[r];
          float* arow = acc[r];
          for (int64_t j = 0; j < jn; ++j) arow[j] += av * brow[j];
        }
      }
      for (int64_t r = 0; r < im; ++r) {
        float* crow = c + (i0 + r) * n + j0;
        for (int64_t j = 0; j < jn; ++j) crow[j] += acc[r][j];
      }
    }
  }
}

void MatMulTile(const float* a, int64_t lda, const float* b, int64_t ldb,
                float* acc, int64_t acc_stride, int64_t rows, int64_t k,
                int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    float* arow = acc + r * acc_stride;
    for (int64_t j = 0; j < cols; ++j) arow[j] = 0.0f;
  }
  for (int64_t l = 0; l < k; ++l) {
    const float* brow = b + l * ldb;
    for (int64_t r = 0; r < rows; ++r) {
      float av = a[r * lda + l];
      float* arow = acc + r * acc_stride;
      for (int64_t j = 0; j < cols; ++j) arow[j] += av * brow[j];
    }
  }
}

int32_t DotI8(const int8_t* a, const int8_t* b, int64_t n) {
  int32_t sum = 0;
  for (int64_t i = 0; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

inline float Bf16ToFloat(uint16_t v) {
  uint32_t bits = static_cast<uint32_t>(v) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

float DotBf16(const uint16_t* a, const float* q, int64_t n) {
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) sum += Bf16ToFloat(a[i]) * q[i];
  return sum;
}

void ScoreRowsI8(const int8_t* m, const float* scales, const int8_t* q,
                 float qscale, int64_t rows, int64_t dim, float* out) {
  for (int64_t e = 0; e < rows; ++e) {
    out[e] = qscale * scales[e] *
             static_cast<float>(DotI8(m + e * dim, q, dim));
  }
}

void ScoreRowsBf16(const uint16_t* m, const float* q, int64_t rows,
                   int64_t dim, float* out) {
  for (int64_t e = 0; e < rows; ++e) out[e] = DotBf16(m + e * dim, q, dim);
}

constexpr KernelTable kTable = {
    Add,          Sub,           Mul,          Accumulate, MulAccumulate,
    Axpy,         Scale,         AddScalar,    Relu,       ReluBackward,
    AccumulateFresh, MulAccumulateFresh, AxpyFresh, ReluBackwardFresh,
    RowMax,       MatMulRowsNN,  MatMulRowsNT, MatMulRowsTN,
    MatMulTile,   DotI8,         DotBf16,      ScoreRowsI8, ScoreRowsBf16,
};

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 variants (8 fp32 lanes). Lanes carry independent output elements;
// arithmetic per element is mul then add (two roundings) exactly like the
// scalar loops. Tails run the scalar epilogue, which continues the same
// per-element chains (elementwise kernels have no cross-element state; the
// matmul kernels give each element its own accumulator either way).
// ---------------------------------------------------------------------------
#if defined(LOGCL_SIMD_X86)
namespace avx2 {

LOGCL_TARGET_AVX2 void Add(const float* a, const float* b, float* out,
                           int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

LOGCL_TARGET_AVX2 void Sub(const float* a, const float* b, float* out,
                           int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

LOGCL_TARGET_AVX2 void Mul(const float* a, const float* b, float* out,
                           int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

LOGCL_TARGET_AVX2 void Accumulate(const float* x, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

LOGCL_TARGET_AVX2 void MulAccumulate(const float* a, const float* b, float* y,
                                     int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a[i] * b[i];
}

LOGCL_TARGET_AVX2 void Axpy(float s, const float* x, float* y, int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 prod = _mm256_mul_ps(sv, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

LOGCL_TARGET_AVX2 void Scale(const float* x, float s, float* out, int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(sv, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) out[i] = s * x[i];
}

LOGCL_TARGET_AVX2 void AddScalar(const float* x, float s, float* out,
                                 int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(x + i), sv));
  }
  for (; i < n; ++i) out[i] = x[i] + s;
}

LOGCL_TARGET_AVX2 void Relu(const float* x, float* out, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // vmaxps(x, 0): x > 0 ? x : 0 per lane — the scalar definition.
    _mm256_storeu_ps(out + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

LOGCL_TARGET_AVX2 void ReluBackward(const float* x, const float* g, float* gx,
                                    int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero, _CMP_GT_OQ);
    __m256 gated = _mm256_and_ps(mask, _mm256_loadu_ps(g + i));
    // Masked-off lanes add +0.0f, same as the scalar branch.
    _mm256_storeu_ps(gx + i,
                     _mm256_add_ps(_mm256_loadu_ps(gx + i), gated));
  }
  for (; i < n; ++i) gx[i] += x[i] > 0.0f ? g[i] : 0.0f;
}

LOGCL_TARGET_AVX2 void AccumulateFresh(const float* x, float* y, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(zero, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = 0.0f + x[i];
}

LOGCL_TARGET_AVX2 void MulAccumulateFresh(const float* a, const float* b,
                                          float* y, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(zero, prod));
  }
  for (; i < n; ++i) y[i] = 0.0f + a[i] * b[i];
}

LOGCL_TARGET_AVX2 void AxpyFresh(float s, const float* x, float* y,
                                 int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 prod = _mm256_mul_ps(sv, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(zero, prod));
  }
  for (; i < n; ++i) y[i] = 0.0f + s * x[i];
}

LOGCL_TARGET_AVX2 void ReluBackwardFresh(const float* x, const float* g,
                                         float* gx, int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero, _CMP_GT_OQ);
    __m256 gated = _mm256_and_ps(mask, _mm256_loadu_ps(g + i));
    _mm256_storeu_ps(gx + i, _mm256_add_ps(zero, gated));
  }
  for (; i < n; ++i) gx[i] = 0.0f + (x[i] > 0.0f ? g[i] : 0.0f);
}

LOGCL_TARGET_AVX2 inline float HorizontalMax(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  return _mm_cvtss_f32(m);
}

LOGCL_TARGET_AVX2 float RowMax(const float* x, int64_t n) {
  // max over finite floats is exact under any lane/association order, so the
  // reduction tree here returns the same bits as the scalar sweep.
  float m = -std::numeric_limits<float>::infinity();
  int64_t i = 0;
  if (n >= 8) {
    __m256 mv = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8) {
      mv = _mm256_max_ps(mv, _mm256_loadu_ps(x + i));
    }
    m = HorizontalMax(mv);
  }
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

// Register-resident micro-panel: R output rows x one 8-wide column chunk,
// accumulators held in ymm registers across the full reduction sweep. Each
// accumulator is one output element's chain: zero init, ascending l,
// mul-then-add — identical to the scalar kernel's acc[r][j].
template <int R>
LOGCL_TARGET_AVX2 inline void PanelNN(const float* a, int64_t lda,
                                      const float* b, float* c, int64_t k,
                                      int64_t n) {
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 acc[R];
    for (int r = 0; r < R; ++r) acc[r] = _mm256_setzero_ps();
    for (int64_t l = 0; l < k; ++l) {
      const __m256 bv = _mm256_loadu_ps(b + l * n + j);
      for (int r = 0; r < R; ++r) {
        acc[r] = _mm256_add_ps(
            acc[r], _mm256_mul_ps(_mm256_set1_ps(a[r * lda + l]), bv));
      }
    }
    for (int r = 0; r < R; ++r) {
      float* cp = c + r * n + j;
      _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), acc[r]));
    }
  }
  for (; j < n; ++j) {
    for (int r = 0; r < R; ++r) {
      float acc = 0.0f;
      for (int64_t l = 0; l < k; ++l) acc += a[r * lda + l] * b[l * n + j];
      c[r * n + j] += acc;
    }
  }
}

LOGCL_TARGET_AVX2 void MatMulRowsNN(const float* a, const float* b, float* c,
                                    int64_t /*m*/, int64_t k, int64_t n,
                                    int64_t r0, int64_t r1) {
  int64_t i = r0;
  for (; i + 4 <= r1; i += 4) PanelNN<4>(a + i * k, k, b, c + i * n, k, n);
  switch (r1 - i) {
    case 3: PanelNN<3>(a + i * k, k, b, c + i * n, k, n); break;
    case 2: PanelNN<2>(a + i * k, k, b, c + i * n, k, n); break;
    case 1: PanelNN<1>(a + i * k, k, b, c + i * n, k, n); break;
    default: break;
  }
}

// TN is NN with A read column-wise: the A operand of output row i is the
// stride-k column a[. * k + i].
template <int R>
LOGCL_TARGET_AVX2 inline void PanelTN(const float* a, int64_t k, int64_t i0,
                                      const float* b, float* c, int64_t m,
                                      int64_t n) {
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 acc[R];
    for (int r = 0; r < R; ++r) acc[r] = _mm256_setzero_ps();
    for (int64_t l = 0; l < m; ++l) {
      const __m256 bv = _mm256_loadu_ps(b + l * n + j);
      const float* acol = a + l * k + i0;
      for (int r = 0; r < R; ++r) {
        acc[r] = _mm256_add_ps(acc[r],
                               _mm256_mul_ps(_mm256_set1_ps(acol[r]), bv));
      }
    }
    for (int r = 0; r < R; ++r) {
      float* cp = c + r * n + j;
      _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), acc[r]));
    }
  }
  for (; j < n; ++j) {
    for (int r = 0; r < R; ++r) {
      float acc = 0.0f;
      for (int64_t l = 0; l < m; ++l) {
        acc += a[l * k + i0 + r] * b[l * n + j];
      }
      c[r * n + j] += acc;
    }
  }
}

LOGCL_TARGET_AVX2 void MatMulRowsTN(const float* a, const float* b, float* c,
                                    int64_t m, int64_t k, int64_t n,
                                    int64_t r0, int64_t r1) {
  int64_t i = r0;
  for (; i + 4 <= r1; i += 4) PanelTN<4>(a, k, i, b, c + i * n, m, n);
  switch (r1 - i) {
    case 3: PanelTN<3>(a, k, i, b, c + i * n, m, n); break;
    case 2: PanelTN<2>(a, k, i, b, c + i * n, m, n); break;
    case 1: PanelTN<1>(a, k, i, b, c + i * n, m, n); break;
    default: break;
  }
}

LOGCL_TARGET_AVX2 void MatMulTile(const float* a, int64_t lda, const float* b,
                                  int64_t ldb, float* acc, int64_t acc_stride,
                                  int64_t rows, int64_t k, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* ar = a + r * lda;
    float* accr = acc + r * acc_stride;
    int64_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      __m256 v = _mm256_setzero_ps();
      for (int64_t l = 0; l < k; ++l) {
        v = _mm256_add_ps(
            v, _mm256_mul_ps(_mm256_set1_ps(ar[l]), _mm256_loadu_ps(b + l * ldb + j)));
      }
      _mm256_storeu_ps(accr + j, v);
    }
    for (; j < cols; ++j) {
      float s = 0.0f;
      for (int64_t l = 0; l < k; ++l) s += ar[l] * b[l * ldb + j];
      accr[j] = s;
    }
  }
}

LOGCL_TARGET_AVX2 inline int32_t HorizontalSumI32(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

LOGCL_TARGET_AVX2 int32_t DotI8(const int8_t* a, const int8_t* b, int64_t n) {
  // Widen to i16, pairwise multiply-add to i32 (vpmaddwd), accumulate in
  // i32 — exact, so any summation order matches the scalar loop. i16
  // products of two int8 values cannot overflow vpmaddwd's pairwise i32 sum.
  __m256i acc = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  int32_t sum = HorizontalSumI32(acc);
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

LOGCL_TARGET_AVX2 inline float HorizontalSumF32(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

LOGCL_TARGET_AVX2 float DotBf16(const uint16_t* a, const float* q, int64_t n) {
  // Lane-partial float accumulation: fast, not bitwise-stable vs scalar.
  // Only the rank-correlation-gated quantized scoring path uses this.
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m256i wide = _mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16);
    __m256 av = _mm256_castsi256_ps(wide);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(av, _mm256_loadu_ps(q + i)));
  }
  float sum = HorizontalSumF32(acc);
  for (; i < n; ++i) sum += scalar::Bf16ToFloat(a[i]) * q[i];
  return sum;
}

// Batched row scoring: one dispatch for the whole candidate matrix. At
// serving dims (d = 16..64) each dot is only a few vector ops, so a
// per-entity indirect call would cost more than the arithmetic.
LOGCL_TARGET_AVX2 void ScoreRowsI8(const int8_t* m, const float* scales,
                                   const int8_t* q, float qscale,
                                   int64_t rows, int64_t dim, float* out) {
  for (int64_t e = 0; e < rows; ++e) {
    out[e] = qscale * scales[e] *
             static_cast<float>(DotI8(m + e * dim, q, dim));
  }
}

LOGCL_TARGET_AVX2 void ScoreRowsBf16(const uint16_t* m, const float* q,
                                     int64_t rows, int64_t dim, float* out) {
  for (int64_t e = 0; e < rows; ++e) out[e] = DotBf16(m + e * dim, q, dim);
}

constexpr KernelTable kTable = {
    Add,          Sub,          Mul,     Accumulate, MulAccumulate,
    Axpy,         Scale,        AddScalar, Relu,     ReluBackward,
    AccumulateFresh, MulAccumulateFresh, AxpyFresh, ReluBackwardFresh,
    RowMax,       MatMulRowsNN, nullptr, MatMulRowsTN,
    MatMulTile,   DotI8,        DotBf16, ScoreRowsI8, ScoreRowsBf16,
};

}  // namespace avx2
#endif  // LOGCL_SIMD_X86

// ---------------------------------------------------------------------------
// NEON variants (4 fp32 lanes; baseline on aarch64). Same lane-independence
// argument as AVX2; vmulq/vaddq are used instead of vmlaq, which the
// compiler may lower to a fused fma.
// ---------------------------------------------------------------------------
#if defined(LOGCL_SIMD_NEON)
namespace neon {

void Add(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void Sub(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void Mul(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void Accumulate(const float* x, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void MulAccumulate(const float* a, const float* b, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t prod = vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a[i] * b[i];
}

void Axpy(float s, const float* x, float* y, int64_t n) {
  const float32x4_t sv = vdupq_n_f32(s);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t prod = vmulq_f32(sv, vld1q_f32(x + i));
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), prod));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

void Scale(const float* x, float s, float* out, int64_t n) {
  const float32x4_t sv = vdupq_n_f32(s);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(sv, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) out[i] = s * x[i];
}

void AddScalar(const float* x, float s, float* out, int64_t n) {
  const float32x4_t sv = vdupq_n_f32(s);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(x + i), sv));
  }
  for (; i < n; ++i) out[i] = x[i] + s;
}

void Relu(const float* x, float* out, int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmaxq_f32(vld1q_f32(x + i), zero));
  }
  for (; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ReluBackward(const float* x, const float* g, float* gx, int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32x4_t mask = vcgtq_f32(vld1q_f32(x + i), zero);
    float32x4_t gated = vreinterpretq_f32_u32(
        vandq_u32(mask, vreinterpretq_u32_f32(vld1q_f32(g + i))));
    vst1q_f32(gx + i, vaddq_f32(vld1q_f32(gx + i), gated));
  }
  for (; i < n; ++i) gx[i] += x[i] > 0.0f ? g[i] : 0.0f;
}

void AccumulateFresh(const float* x, float* y, int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vaddq_f32(zero, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] = 0.0f + x[i];
}

void MulAccumulateFresh(const float* a, const float* b, float* y, int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t prod = vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    vst1q_f32(y + i, vaddq_f32(zero, prod));
  }
  for (; i < n; ++i) y[i] = 0.0f + a[i] * b[i];
}

void AxpyFresh(float s, const float* x, float* y, int64_t n) {
  const float32x4_t sv = vdupq_n_f32(s);
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t prod = vmulq_f32(sv, vld1q_f32(x + i));
    vst1q_f32(y + i, vaddq_f32(zero, prod));
  }
  for (; i < n; ++i) y[i] = 0.0f + s * x[i];
}

void ReluBackwardFresh(const float* x, const float* g, float* gx, int64_t n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32x4_t mask = vcgtq_f32(vld1q_f32(x + i), zero);
    float32x4_t gated = vreinterpretq_f32_u32(
        vandq_u32(mask, vreinterpretq_u32_f32(vld1q_f32(g + i))));
    vst1q_f32(gx + i, vaddq_f32(zero, gated));
  }
  for (; i < n; ++i) gx[i] = 0.0f + (x[i] > 0.0f ? g[i] : 0.0f);
}

float RowMax(const float* x, int64_t n) {
  float m = -std::numeric_limits<float>::infinity();
  int64_t i = 0;
  if (n >= 4) {
    float32x4_t mv = vld1q_f32(x);
    for (i = 4; i + 4 <= n; i += 4) mv = vmaxq_f32(mv, vld1q_f32(x + i));
    m = vmaxvq_f32(mv);
  }
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

template <int R>
inline void PanelNN(const float* a, int64_t lda, const float* b, float* c,
                    int64_t k, int64_t n) {
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    float32x4_t acc[R];
    for (int r = 0; r < R; ++r) acc[r] = vdupq_n_f32(0.0f);
    for (int64_t l = 0; l < k; ++l) {
      const float32x4_t bv = vld1q_f32(b + l * n + j);
      for (int r = 0; r < R; ++r) {
        acc[r] = vaddq_f32(acc[r], vmulq_f32(vdupq_n_f32(a[r * lda + l]), bv));
      }
    }
    for (int r = 0; r < R; ++r) {
      float* cp = c + r * n + j;
      vst1q_f32(cp, vaddq_f32(vld1q_f32(cp), acc[r]));
    }
  }
  for (; j < n; ++j) {
    for (int r = 0; r < R; ++r) {
      float acc = 0.0f;
      for (int64_t l = 0; l < k; ++l) acc += a[r * lda + l] * b[l * n + j];
      c[r * n + j] += acc;
    }
  }
}

void MatMulRowsNN(const float* a, const float* b, float* c, int64_t /*m*/,
                  int64_t k, int64_t n, int64_t r0, int64_t r1) {
  int64_t i = r0;
  for (; i + 4 <= r1; i += 4) PanelNN<4>(a + i * k, k, b, c + i * n, k, n);
  switch (r1 - i) {
    case 3: PanelNN<3>(a + i * k, k, b, c + i * n, k, n); break;
    case 2: PanelNN<2>(a + i * k, k, b, c + i * n, k, n); break;
    case 1: PanelNN<1>(a + i * k, k, b, c + i * n, k, n); break;
    default: break;
  }
}

template <int R>
inline void PanelTN(const float* a, int64_t k, int64_t i0, const float* b,
                    float* c, int64_t m, int64_t n) {
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    float32x4_t acc[R];
    for (int r = 0; r < R; ++r) acc[r] = vdupq_n_f32(0.0f);
    for (int64_t l = 0; l < m; ++l) {
      const float32x4_t bv = vld1q_f32(b + l * n + j);
      const float* acol = a + l * k + i0;
      for (int r = 0; r < R; ++r) {
        acc[r] = vaddq_f32(acc[r], vmulq_f32(vdupq_n_f32(acol[r]), bv));
      }
    }
    for (int r = 0; r < R; ++r) {
      float* cp = c + r * n + j;
      vst1q_f32(cp, vaddq_f32(vld1q_f32(cp), acc[r]));
    }
  }
  for (; j < n; ++j) {
    for (int r = 0; r < R; ++r) {
      float acc = 0.0f;
      for (int64_t l = 0; l < m; ++l) acc += a[l * k + i0 + r] * b[l * n + j];
      c[r * n + j] += acc;
    }
  }
}

void MatMulRowsTN(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, int64_t r0, int64_t r1) {
  int64_t i = r0;
  for (; i + 4 <= r1; i += 4) PanelTN<4>(a, k, i, b, c + i * n, m, n);
  switch (r1 - i) {
    case 3: PanelTN<3>(a, k, i, b, c + i * n, m, n); break;
    case 2: PanelTN<2>(a, k, i, b, c + i * n, m, n); break;
    case 1: PanelTN<1>(a, k, i, b, c + i * n, m, n); break;
    default: break;
  }
}

void MatMulTile(const float* a, int64_t lda, const float* b, int64_t ldb,
                float* acc, int64_t acc_stride, int64_t rows, int64_t k,
                int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* ar = a + r * lda;
    float* accr = acc + r * acc_stride;
    int64_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      float32x4_t v = vdupq_n_f32(0.0f);
      for (int64_t l = 0; l < k; ++l) {
        v = vaddq_f32(v, vmulq_f32(vdupq_n_f32(ar[l]), vld1q_f32(b + l * ldb + j)));
      }
      vst1q_f32(accr + j, v);
    }
    for (; j < cols; ++j) {
      float s = 0.0f;
      for (int64_t l = 0; l < k; ++l) s += ar[l] * b[l * ldb + j];
      accr[j] = s;
    }
  }
}

int32_t DotI8(const int8_t* a, const int8_t* b, int64_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    int16x8_t av = vmovl_s8(vld1_s8(a + i));
    int16x8_t bv = vmovl_s8(vld1_s8(b + i));
    acc = vaddq_s32(acc, vmull_s16(vget_low_s16(av), vget_low_s16(bv)));
    acc = vaddq_s32(acc, vmull_s16(vget_high_s16(av), vget_high_s16(bv)));
  }
  int32_t sum = vaddvq_s32(acc);
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

float DotBf16(const uint16_t* a, const float* q, int64_t n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32x4_t wide = vshlq_n_u32(vmovl_u16(vld1_u16(a + i)), 16);
    float32x4_t av = vreinterpretq_f32_u32(wide);
    acc = vaddq_f32(acc, vmulq_f32(av, vld1q_f32(q + i)));
  }
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) sum += scalar::Bf16ToFloat(a[i]) * q[i];
  return sum;
}

// Batched row scoring (one dispatch per candidate matrix; see the AVX2
// comment).
void ScoreRowsI8(const int8_t* m, const float* scales, const int8_t* q,
                 float qscale, int64_t rows, int64_t dim, float* out) {
  for (int64_t e = 0; e < rows; ++e) {
    out[e] = qscale * scales[e] *
             static_cast<float>(DotI8(m + e * dim, q, dim));
  }
}

void ScoreRowsBf16(const uint16_t* m, const float* q, int64_t rows,
                   int64_t dim, float* out) {
  for (int64_t e = 0; e < rows; ++e) out[e] = DotBf16(m + e * dim, q, dim);
}

constexpr KernelTable kTable = {
    Add,          Sub,          Mul,     Accumulate, MulAccumulate,
    Axpy,         Scale,        AddScalar, Relu,     ReluBackward,
    AccumulateFresh, MulAccumulateFresh, AxpyFresh, ReluBackwardFresh,
    RowMax,       MatMulRowsNN, nullptr, MatMulRowsTN,
    MatMulTile,   DotI8,        DotBf16, ScoreRowsI8, ScoreRowsBf16,
};

}  // namespace neon
#endif  // LOGCL_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

bool SimdEnvEnabled() { return RuntimeConfig::Get().simd; }

SimdIsa DetectIsa() {
#if defined(LOGCL_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return SimdIsa::kAvx2;
#endif
#if defined(LOGCL_SIMD_NEON)
  return SimdIsa::kNeon;
#endif
  return SimdIsa::kScalar;
}

const KernelTable* TableFor(SimdIsa isa) {
  switch (isa) {
#if defined(LOGCL_SIMD_X86)
    case SimdIsa::kAvx2:
      return &avx2::kTable;
#endif
#if defined(LOGCL_SIMD_NEON)
    case SimdIsa::kNeon:
      return &neon::kTable;
#endif
    default:
      return &scalar::kTable;
  }
}

struct Dispatch {
  SimdIsa detected = DetectIsa();
  const KernelTable* best = TableFor(detected);
  std::atomic<bool> enabled{SimdEnvEnabled()};
  std::atomic<const KernelTable*> active{enabled.load() ? best
                                                        : &scalar::kTable};
};

Dispatch& GetDispatch() {
  static Dispatch d;
  return d;
}

inline const KernelTable* Active() {
  return GetDispatch().active.load(std::memory_order_relaxed);
}

// Blocked row-major transpose: out(cols x rows) = in(rows x cols)^T. Pure
// copy — no rounding — so it never affects parity.
void TransposeBlocked(const float* in, int64_t rows, int64_t cols,
                      float* out) {
  constexpr int64_t kBlock = 32;
  for (int64_t i0 = 0; i0 < rows; i0 += kBlock) {
    const int64_t i1 = std::min(rows, i0 + kBlock);
    for (int64_t j0 = 0; j0 < cols; j0 += kBlock) {
      const int64_t j1 = std::min(cols, j0 + kBlock);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = j0; j < j1; ++j) {
          out[j * rows + i] = in[i * cols + j];
        }
      }
    }
  }
}

}  // namespace

SimdIsa DetectedIsa() { return GetDispatch().detected; }

SimdIsa ActiveIsa() {
  Dispatch& d = GetDispatch();
  return d.enabled.load(std::memory_order_relaxed) ? d.detected
                                                   : SimdIsa::kScalar;
}

const char* IsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

bool SimdEnabled() {
  return GetDispatch().enabled.load(std::memory_order_relaxed);
}

void SetSimdEnabled(bool enabled) {
  Dispatch& d = GetDispatch();
  d.enabled.store(enabled, std::memory_order_relaxed);
  d.active.store(enabled ? d.best : &scalar::kTable,
                 std::memory_order_relaxed);
}

void Add(const float* a, const float* b, float* out, int64_t n) {
  Active()->add(a, b, out, n);
}
void Sub(const float* a, const float* b, float* out, int64_t n) {
  Active()->sub(a, b, out, n);
}
void Mul(const float* a, const float* b, float* out, int64_t n) {
  Active()->mul(a, b, out, n);
}
void Accumulate(const float* x, float* y, int64_t n) {
  Active()->accumulate(x, y, n);
}
void MulAccumulate(const float* a, const float* b, float* y, int64_t n) {
  Active()->mul_accumulate(a, b, y, n);
}
void Axpy(float s, const float* x, float* y, int64_t n) {
  Active()->axpy(s, x, y, n);
}
void Scale(const float* x, float s, float* out, int64_t n) {
  Active()->scale(x, s, out, n);
}
void AddScalar(const float* x, float s, float* out, int64_t n) {
  Active()->add_scalar(x, s, out, n);
}
void Relu(const float* x, float* out, int64_t n) { Active()->relu(x, out, n); }
void ReluBackward(const float* x, const float* g, float* gx, int64_t n) {
  Active()->relu_backward(x, g, gx, n);
}
void AccumulateFresh(const float* x, float* y, int64_t n) {
  Active()->accumulate_fresh(x, y, n);
}
void MulAccumulateFresh(const float* a, const float* b, float* y, int64_t n) {
  Active()->mul_accumulate_fresh(a, b, y, n);
}
void AxpyFresh(float s, const float* x, float* y, int64_t n) {
  Active()->axpy_fresh(s, x, y, n);
}
void ReluBackwardFresh(const float* x, const float* g, float* gx, int64_t n) {
  Active()->relu_backward_fresh(x, g, gx, n);
}
float RowMax(const float* x, int64_t n) { return Active()->row_max(x, n); }

int64_t MatMulRowGrain(int64_t flops_per_row) {
  return std::max<int64_t>(
      kTileRows, kMatMulShardFlops / std::max<int64_t>(1, flops_per_row));
}

void MatMulRowsNN(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, int64_t r0, int64_t r1) {
  Active()->matmul_rows_nn(a, b, c, m, k, n, r0, r1);
}

void MatMulRowsTN(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, int64_t r0, int64_t r1) {
  Active()->matmul_rows_tn(a, b, c, m, k, n, r0, r1);
}

void MatMulAccumNN(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n) {
  const KernelTable* t = Active();
  ParallelFor(0, m, MatMulRowGrain(k * n), [&](int64_t r0, int64_t r1) {
    t->matmul_rows_nn(a, b, c, m, k, n, r0, r1);
  });
}

void MatMulAccumNT(const float* a, const float* b, float* c, int64_t m,
                   int64_t n, int64_t k) {
  const KernelTable* t = Active();
  // Skinny outputs can't amortise materialising B^T (O(n*k) copy against
  // O(m*n*k) compute), so they keep the direct dot-tile kernel. The choice
  // is free: both lowerings accumulate the identical rounded products in
  // the identical ascending order, so outputs are bitwise-equal either way.
  if (t->matmul_rows_nt != nullptr || m < 2 * kTileRows) {
    const KernelTable* nt =
        t->matmul_rows_nt != nullptr ? t : &scalar::kTable;
    ParallelFor(0, m, MatMulRowGrain(n * k), [&](int64_t r0, int64_t r1) {
      nt->matmul_rows_nt(a, b, c, m, n, k, r0, r1);
    });
    return;
  }
  // Wide path: materialise B^T(n x k) once, then run the NN kernel. Per
  // output element this accumulates the identical rounded products in the
  // identical ascending order as the scalar dot-product kernel, so the two
  // paths stay bitwise-equal.
  PooledBuffer bt(static_cast<size_t>(n) * static_cast<size_t>(k),
                  BufferFill::kUninit);
  TransposeBlocked(b, k, n, bt.data());
  const float* btp = bt.data();
  ParallelFor(0, m, MatMulRowGrain(n * k), [&](int64_t r0, int64_t r1) {
    t->matmul_rows_nn(a, btp, c, m, n, k, r0, r1);
  });
}

void MatMulAccumTN(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n) {
  const KernelTable* t = Active();
  ParallelFor(0, k, MatMulRowGrain(m * n), [&](int64_t r0, int64_t r1) {
    t->matmul_rows_tn(a, b, c, m, k, n, r0, r1);
  });
}

void MatMulTile(const float* a, int64_t lda, const float* b, int64_t ldb,
                float* acc, int64_t acc_stride, int64_t rows, int64_t k,
                int64_t cols) {
  Active()->matmul_tile(a, lda, b, ldb, acc, acc_stride, rows, k, cols);
}

int32_t DotI8(const int8_t* a, const int8_t* b, int64_t n) {
  return Active()->dot_i8(a, b, n);
}

float DotBf16(const uint16_t* a, const float* q, int64_t n) {
  return Active()->dot_bf16(a, q, n);
}

void ScoreRowsI8(const int8_t* m, const float* scales, const int8_t* q,
                 float qscale, int64_t rows, int64_t dim, float* out) {
  Active()->score_rows_i8(m, scales, q, qscale, rows, dim, out);
}

void ScoreRowsBf16(const uint16_t* m, const float* q, int64_t rows,
                   int64_t dim, float* out) {
  Active()->score_rows_bf16(m, q, rows, dim, out);
}

}  // namespace simd
}  // namespace logcl
