// Numerical gradient verification (central finite differences) used by the
// property-based tests to validate every op's backward implementation.

#ifndef LOGCL_TENSOR_GRADCHECK_H_
#define LOGCL_TENSOR_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace logcl {

/// Result of one gradient check.
struct GradCheckReport {
  bool passed = false;
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  std::string detail;  // first offending element, if any
};

/// Options controlling the finite-difference comparison.
struct GradCheckOptions {
  float epsilon = 1e-3f;       // perturbation step
  float abs_tolerance = 2e-2f; // float32 + central differences
  float rel_tolerance = 5e-2f;
};

/// `fn` must map the given leaf inputs to a scalar Tensor, re-running the
/// full forward each call (it is invoked ~2 * total_elements times). All
/// inputs must have requires_grad = true. Compares analytic grads from
/// Backward() against central finite differences.
GradCheckReport CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, const GradCheckOptions& options = {});

}  // namespace logcl

#endif  // LOGCL_TENSOR_GRADCHECK_H_
