#include "tensor/serialization.h"

#include "tensor/checkpoint.h"

namespace logcl {

// Deprecated shims kept for source compatibility; the implementation moved
// to tensor/checkpoint.{h,cc} when the checkpoint API was unified. New code
// should call checkpoint::Save / checkpoint::Load directly.

Status SaveParameters(const std::vector<Tensor>& parameters,
                      const std::string& path) {
  return checkpoint::Save(parameters, path);
}

Status LoadParameters(const std::string& path,
                      std::vector<Tensor>* parameters) {
  return checkpoint::Load(path, parameters);
}

}  // namespace logcl
