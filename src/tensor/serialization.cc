#include "tensor/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/stringpiece.h"

namespace logcl {

namespace {

constexpr char kMagic[8] = {'L', 'G', 'C', 'L', 'C', 'K', 'P', 'T'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveParameters(const std::vector<Tensor>& parameters,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(parameters.size()));
  for (const Tensor& p : parameters) {
    if (!p.defined()) {
      return Status::InvalidArgument("undefined tensor in parameter list");
    }
    WritePod(out, static_cast<uint32_t>(p.shape().rank()));
    for (int64_t dim : p.shape().dims()) {
      WritePod(out, static_cast<uint64_t>(dim));
    }
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(p.data().size() * sizeof(float)));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadParameters(const std::string& path,
                      std::vector<Tensor>* parameters) {
  if (parameters == nullptr) {
    return Status::InvalidArgument("null parameter list");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a LogCL checkpoint: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported checkpoint version %u", version));
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated header");
  if (count != parameters->size()) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint has %llu tensors, model has %zu",
        static_cast<unsigned long long>(count), parameters->size()));
  }
  for (size_t i = 0; i < parameters->size(); ++i) {
    Tensor& p = (*parameters)[i];
    uint32_t rank = 0;
    if (!ReadPod(in, &rank)) return Status::IoError("truncated tensor header");
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadPod(in, &dim)) return Status::IoError("truncated dims");
      dims[d] = static_cast<int64_t>(dim);
    }
    if (Shape(dims) != p.shape()) {
      return Status::FailedPrecondition(StrFormat(
          "tensor %zu shape mismatch: checkpoint %s vs model %s", i,
          Shape(dims).ToString().c_str(), p.shape().ToString().c_str()));
    }
    std::vector<float>& data = p.mutable_data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated tensor data");
  }
  return Status::Ok();
}

}  // namespace logcl
