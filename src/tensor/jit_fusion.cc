// CompiledPlan: fusion, static buffer planning, and replay execution for
// traced elementwise segments (see tensor/jit.h for the pipeline overview).
//
// Compile = validate -> dead-code-eliminate -> pick the saved set -> run two
// linear-scan planners (tile-sized scratch slots over forward lifetimes,
// full-size grad regions over backward lifetimes). Replay = one fused
// row/flat-tiled forward pass + one recorded backward program, both built
// from the exact per-element kernels the eager path uses so LOGCL_JIT=1 is
// bitwise-identical to eager at any thread count.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "tensor/buffer_pool.h"
#include "tensor/elementwise_kernels.h"
#include "tensor/jit_internal.h"
#include "tensor/simd.h"

namespace logcl {
namespace jit {
namespace internal {
namespace {

using Node = internal_tensor::TensorNode;

// Sharding grains — must match ops.cc exactly: the recorded backward
// program re-runs the eager gradient loops, and ParallelReduce results
// depend on the chunk boundaries the grain fixes.
constexpr int64_t kGrain = 8192;

inline int64_t RowGrain(int64_t cols) {
  return std::max<int64_t>(1, kGrain / std::max<int64_t>(1, cols));
}

// Forward fusion tile: one pass over ~16 KB of each operand per tile keeps
// the whole chain's working set in L1/L2. Row-tiled plans round this down
// to whole rows so row-broadcast ops never straddle a tile.
constexpr int64_t kTileElems = 4096;

inline bool IsRowOp(OpCode op) {
  return op == OpCode::kRowAdd || op == OpCode::kRowSub ||
         op == OpCode::kRowMul;
}

inline bool IsScalOp(OpCode op) {
  return op == OpCode::kScalAdd || op == OpCode::kScalSub ||
         op == OpCode::kScalMul;
}

// --------------------------------------------------------------------------
// Fused forward
// --------------------------------------------------------------------------

// Resolves the tile-local pointer of a same-shape value. Scratch slots are
// tile-local (no element offset): they only ever hold the current tile.
inline const float* TileSrc(const CompiledPlan& plan,
                            const float* const* in,
                            const float* od, const float* saved,
                            const float* scratch, int32_t v, int64_t elem0) {
  const ValueInfo& info = plan.values[v];
  switch (info.storage) {
    case Storage::kInput:
      return in[info.input_index] + elem0;
    case Storage::kOutput:
      return od + elem0;
    case Storage::kSaved:
      return saved + info.offset + elem0;
    case Storage::kScratch:
      return scratch + info.scratch_slot * plan.tile_elems;
  }
  return nullptr;
}

inline float* TileDst(const CompiledPlan& plan, float* od, float* saved,
                      float* scratch, int32_t v, int64_t elem0) {
  const ValueInfo& info = plan.values[v];
  switch (info.storage) {
    case Storage::kOutput:
      return od + elem0;
    case Storage::kSaved:
      return saved + info.offset + elem0;
    case Storage::kScratch:
      return scratch + info.scratch_slot * plan.tile_elems;
    case Storage::kInput:
      break;
  }
  LOGCL_CHECK(false) << "jit: instr writes an input value";
  return nullptr;
}

// Runs every instruction over one tile [elem0, elem0 + len). Row-tiled
// plans guarantee len is a whole number of rows.
void ExecTile(const CompiledPlan& plan, const float* const* in,
              float* od, float* saved, float* scratch, int64_t elem0,
              int64_t len) {
  const int64_t cols = plan.cols;
  for (const Instr& ins : plan.instrs) {
    const float* pa =
        TileSrc(plan, in, od, saved, scratch, ins.a, elem0);
    float* po = TileDst(plan, od, saved, scratch, ins.out, elem0);
    switch (ins.op) {
      case OpCode::kAdd:
        simd::Add(pa, TileSrc(plan, in, od, saved, scratch, ins.b, elem0),
                  po, len);
        break;
      case OpCode::kSub:
        simd::Sub(pa, TileSrc(plan, in, od, saved, scratch, ins.b, elem0),
                  po, len);
        break;
      case OpCode::kMul:
        simd::Mul(pa, TileSrc(plan, in, od, saved, scratch, ins.b, elem0),
                  po, len);
        break;
      case OpCode::kRowAdd:
      case OpCode::kRowSub:
      case OpCode::kRowMul: {
        // b is a row input (size cols); same scalar arithmetic as the eager
        // broadcast loop `od[i] = fwd(av[i], bv[i % cols])`.
        const float* pb = in[plan.values[ins.b].input_index];
        for (int64_t r = 0; r < len; r += cols) {
          switch (ins.op) {
            case OpCode::kRowAdd:
              for (int64_t j = 0; j < cols; ++j) po[r + j] = pa[r + j] + pb[j];
              break;
            case OpCode::kRowSub:
              for (int64_t j = 0; j < cols; ++j) po[r + j] = pa[r + j] - pb[j];
              break;
            default:
              for (int64_t j = 0; j < cols; ++j) po[r + j] = pa[r + j] * pb[j];
              break;
          }
        }
        break;
      }
      case OpCode::kScalAdd:
      case OpCode::kScalSub:
      case OpCode::kScalMul: {
        const float bv = in[plan.values[ins.b].input_index][0];
        switch (ins.op) {
          case OpCode::kScalAdd:
            for (int64_t i = 0; i < len; ++i) po[i] = pa[i] + bv;
            break;
          case OpCode::kScalSub:
            for (int64_t i = 0; i < len; ++i) po[i] = pa[i] - bv;
            break;
          default:
            for (int64_t i = 0; i < len; ++i) po[i] = pa[i] * bv;
            break;
        }
        break;
      }
      case OpCode::kScale:
        simd::Scale(pa, ins.param, po, len);
        break;
      case OpCode::kAddConst:
        simd::AddScalar(pa, ins.param, po, len);
        break;
      case OpCode::kRelu:
        simd::Relu(pa, po, len);
        break;
      case OpCode::kUnary:
        ewise::UnaryForwardKernel(ins.ukind, pa, po, len, ins.param);
        break;
    }
  }
}

void ExecuteForward(const CompiledPlan& plan, const float* const* in,
                    float* od, float* saved) {
  const int64_t tile = plan.tile_elems;
  auto run_range = [&](int64_t e0, int64_t e1) {
    // Per-shard scratch: one pool acquisition per shard for the whole
    // chain's intermediates, instead of one per op output.
    PooledBuffer scratch(
        static_cast<size_t>(plan.num_scratch_slots) *
            static_cast<size_t>(tile),
        BufferFill::kUninit);
    for (int64_t t0 = e0; t0 < e1; t0 += tile) {
      ExecTile(plan, in, od, saved, scratch.data(), t0,
               std::min(tile, e1 - t0));
    }
  };
  if (plan.row_tiled) {
    // Shard by row so row-broadcast ops see whole rows; tile boundaries
    // inside a shard are row-aligned because tile_elems % cols == 0.
    ParallelFor(0, plan.rows, RowGrain(plan.cols),
                [&](int64_t r0, int64_t r1) {
                  run_range(r0 * plan.cols, r1 * plan.cols);
                });
  } else {
    ParallelFor(0, plan.n, kGrain, run_range);
  }
}

// --------------------------------------------------------------------------
// Recorded backward program
// --------------------------------------------------------------------------

// Replays the eager gradient accumulation for the whole segment: instrs in
// reverse order (the tape's descending-sequence order — segment nodes are
// sequence-contiguous because capture is single-threaded and any untraced
// consumer poisons the trace), each step running the exact loops ops.cc
// runs for that op/broadcast, with the same grains and reduction shapes.
void ExecBackward(const CompiledPlan& plan, Node& node, float* arena) {
  const int64_t n = plan.n;
  const int64_t cols = plan.cols;
  float* saved = arena;
  float* grads = arena == nullptr ? nullptr : arena + plan.saved_floats;

  const int32_t k = plan.num_inputs;
  std::vector<const float*> in_data(static_cast<size_t>(k));
  std::vector<float*> in_grad(static_cast<size_t>(k), nullptr);
  for (int32_t i = 0; i < k; ++i) {
    Node& parent = *node.parents[static_cast<size_t>(i)];
    in_data[static_cast<size_t>(i)] = parent.data.data();
    if (parent.requires_grad) {
      // Hoisted EnsureGrad: eager allocates lazily inside each op's
      // backward; grads are zero-initialised either way.
      parent.EnsureGrad();
      in_grad[static_cast<size_t>(i)] = parent.grad.data();
    }
  }

  // Grad buffer of a value; null when no gradient flows into it (matching
  // the eager per-parent requires_grad checks).
  auto grad_ptr = [&](int32_t v) -> float* {
    const ValueInfo& info = plan.values[v];
    if (info.is_input) return in_grad[static_cast<size_t>(info.input_index)];
    if (v == plan.output_value) return node.grad.data();
    if (info.grad_offset < 0) return nullptr;
    return grads + info.grad_offset;
  };
  // Forward data of a value (inputs from parents, output from the node,
  // intermediates from the saved arena region).
  auto data_ptr = [&](int32_t v) -> const float* {
    const ValueInfo& info = plan.values[v];
    if (info.is_input) return in_data[static_cast<size_t>(info.input_index)];
    if (v == plan.output_value) return node.data.data();
    LOGCL_CHECK(info.storage == Storage::kSaved);
    return saved + info.offset;
  };

  for (int32_t li = static_cast<int32_t>(plan.instrs.size()) - 1; li >= 0;
       --li) {
    const Instr& ins = plan.instrs[static_cast<size_t>(li)];
    // Eager wired no backward_fn onto non-rg nodes: skip the step entirely.
    if (!plan.values[ins.out].requires_grad) continue;
    // Zero the arena regions whose first accumulation is this step (a
    // region may serve several values with disjoint live ranges).
    for (const ValueInfo& value : plan.values) {
      if (value.grad_zero_at == li) {
        std::fill(grads + value.grad_offset, grads + value.grad_offset + n,
                  0.0f);
      }
    }
    const float* g = grad_ptr(ins.out);
    float* ga = grad_ptr(ins.a);
    float* gb = ins.b >= 0 ? grad_ptr(ins.b) : nullptr;
    switch (ins.op) {
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul: {
        const float* ad =
            (ins.op == OpCode::kMul && gb != nullptr) ? data_ptr(ins.a)
                                                      : nullptr;
        const float* bd =
            (ins.op == OpCode::kMul && ga != nullptr) ? data_ptr(ins.b)
                                                      : nullptr;
        ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
          const int64_t len = i1 - i0;
          switch (ins.op) {
            case OpCode::kAdd:
              if (ga != nullptr) simd::Accumulate(g + i0, ga + i0, len);
              if (gb != nullptr) simd::Accumulate(g + i0, gb + i0, len);
              break;
            case OpCode::kSub:
              if (ga != nullptr) simd::Accumulate(g + i0, ga + i0, len);
              if (gb != nullptr) simd::Axpy(-1.0f, g + i0, gb + i0, len);
              break;
            default:
              if (ga != nullptr) {
                simd::MulAccumulate(g + i0, bd + i0, ga + i0, len);
              }
              if (gb != nullptr) {
                simd::MulAccumulate(g + i0, ad + i0, gb + i0, len);
              }
              break;
          }
        });
        break;
      }
      case OpCode::kRowAdd:
      case OpCode::kRowSub:
      case OpCode::kRowMul: {
        if (ga != nullptr) {
          const float* bd =
              ins.op == OpCode::kRowMul ? data_ptr(ins.b) : nullptr;
          ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
            if (ins.op == OpCode::kRowMul) {
              for (int64_t i = i0; i < i1; ++i) {
                ga[i] += g[i] * bd[i % cols];
              }
            } else {
              for (int64_t i = i0; i < i1; ++i) ga[i] += g[i];
            }
          });
        }
        if (gb != nullptr) {
          // gb[j] accumulates over rows; shard by output column so every
          // column keeps the serial (row-order) accumulation order.
          const float* ad =
              ins.op == OpCode::kRowMul ? data_ptr(ins.a) : nullptr;
          const int64_t rows = n / cols;
          ParallelFor(0, cols, RowGrain(rows), [&](int64_t j0, int64_t j1) {
            for (int64_t j = j0; j < j1; ++j) {
              float sum = gb[j];
              for (int64_t i = j; i < n; i += cols) {
                switch (ins.op) {
                  case OpCode::kRowAdd:
                    sum += g[i];
                    break;
                  case OpCode::kRowSub:
                    sum += -g[i];
                    break;
                  default:
                    sum += g[i] * ad[i];
                    break;
                }
              }
              gb[j] = sum;
            }
          });
        }
        break;
      }
      case OpCode::kScalAdd:
      case OpCode::kScalSub:
      case OpCode::kScalMul: {
        if (ga != nullptr) {
          const float* bd = ins.op == OpCode::kScalMul
                                ? in_data[static_cast<size_t>(
                                      plan.values[ins.b].input_index)]
                                : nullptr;
          ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
            if (ins.op == OpCode::kScalMul) {
              const float bv = bd[0];
              for (int64_t i = i0; i < i1; ++i) ga[i] += g[i] * bv;
            } else {
              for (int64_t i = i0; i < i1; ++i) ga[i] += g[i];
            }
          });
        }
        if (gb != nullptr) {
          const float* ad =
              ins.op == OpCode::kScalMul ? data_ptr(ins.a) : nullptr;
          gb[0] += ParallelReduce<float>(
              0, n, kGrain, 0.0f,
              [&](int64_t i0, int64_t i1) {
                float sum = 0.0f;
                for (int64_t i = i0; i < i1; ++i) {
                  switch (ins.op) {
                    case OpCode::kScalAdd:
                      sum += g[i];
                      break;
                    case OpCode::kScalSub:
                      sum += -g[i];
                      break;
                    default:
                      sum += g[i] * ad[i];
                      break;
                  }
                }
                return sum;
              },
              [](float acc, float partial) { return acc + partial; });
        }
        break;
      }
      case OpCode::kScale:
        if (ga != nullptr) {
          const float s = ins.param;
          ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
            simd::Axpy(s, g + i0, ga + i0, i1 - i0);
          });
        }
        break;
      case OpCode::kAddConst:
        if (ga != nullptr) {
          ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
            simd::Accumulate(g + i0, ga + i0, i1 - i0);
          });
        }
        break;
      case OpCode::kRelu:
        if (ga != nullptr) {
          const float* xd = data_ptr(ins.a);
          ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
            simd::ReluBackward(xd + i0, g + i0, ga + i0, i1 - i0);
          });
        }
        break;
      case OpCode::kUnary:
        if (ga != nullptr) {
          const float* xd =
              ewise::UnaryNeedsX(ins.ukind) ? data_ptr(ins.a) : nullptr;
          const float* yd =
              ewise::UnaryNeedsY(ins.ukind) ? data_ptr(ins.out) : nullptr;
          ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
            ewise::UnaryBackwardKernel(
                ins.ukind, g + i0, xd == nullptr ? nullptr : xd + i0,
                yd == nullptr ? nullptr : yd + i0, ga + i0, i1 - i0,
                ins.param);
          });
        }
        break;
    }
  }
}

}  // namespace

CompiledPlan::~CompiledPlan() {
  if (stats_noted) NotePlanDead(arena_bytes());
}

std::shared_ptr<const CompiledPlan> CompiledPlan::Compile(
    const TraceState& trace, const Tensor& output) {
  if (trace.poisoned || !trace.shape_set) return nullptr;
  // Any op-output node created during capture without a matching trace
  // hook (MatMul, reductions, RNG ops, factories) means the trace is an
  // incomplete description of the builder — reject.
  if (trace.nodes_created != trace.instrs.size()) return nullptr;
  auto it = trace.value_of.find(output.node().get());
  if (it == trace.value_of.end()) return nullptr;
  const int32_t out_id = it->second;
  if (trace.values[static_cast<size_t>(out_id)].is_input) {
    return nullptr;  // identity builder; nothing to replay
  }

  auto plan = std::make_shared<CompiledPlan>();
  plan->values = trace.values;
  plan->num_inputs = trace.num_inputs;
  plan->output_value = out_id;
  plan->grad_mode = trace.grad_mode;
  plan->shape = trace.shape;
  plan->n = trace.shape.num_elements();
  if (plan->n <= 0) return nullptr;

  // Dead-code elimination: keep only instructions the output depends on
  // (the builder may have traced ops whose results it discarded).
  std::vector<char> live_instr(trace.instrs.size(), 0);
  std::vector<int32_t> stack = {out_id};
  plan->values[static_cast<size_t>(out_id)].live = true;
  while (!stack.empty()) {
    const int32_t v = stack.back();
    stack.pop_back();
    const ValueInfo& info = plan->values[static_cast<size_t>(v)];
    if (info.is_input) continue;
    const int32_t def = info.def;
    if (live_instr[static_cast<size_t>(def)]) continue;
    live_instr[static_cast<size_t>(def)] = 1;
    const Instr& ins = trace.instrs[static_cast<size_t>(def)];
    for (int32_t operand : {ins.a, ins.b}) {
      if (operand < 0) continue;
      ValueInfo& op_info = plan->values[static_cast<size_t>(operand)];
      if (!op_info.live) {
        op_info.live = true;
        stack.push_back(operand);
      }
    }
  }
  for (size_t i = 0; i < trace.instrs.size(); ++i) {
    if (live_instr[i]) plan->instrs.push_back(trace.instrs[i]);
  }
  if (plan->instrs.size() < 2) return nullptr;  // nothing to fuse
  // Re-point defs into the live instruction list (planning and the
  // backward program both index it).
  for (size_t li = 0; li < plan->instrs.size(); ++li) {
    plan->values[static_cast<size_t>(plan->instrs[li].out)].def =
        static_cast<int32_t>(li);
  }

  // Replay wires ALL inputs as parents of one node; its requires_grad is
  // then any-input-rg, while eager's segment output had out_id's flag. A
  // mismatch (an rg input outside the output's cone) would flip the
  // output's rg under JIT — reject rather than diverge.
  const bool out_rg =
      plan->values[static_cast<size_t>(out_id)].requires_grad;
  if (trace.grad_mode) {
    bool any_input_rg = false;
    for (int32_t i = 0; i < trace.num_inputs; ++i) {
      any_input_rg |= plan->values[static_cast<size_t>(i)].requires_grad;
    }
    if (out_rg != any_input_rg) return nullptr;
  }
  plan->has_backward = trace.grad_mode && out_rg;

  // Tiling geometry. Row ops need the row-tiled executor (rank 2); the
  // eager broadcast resolution guarantees rank 2 whenever they appear.
  const bool rank2 = plan->shape.rank() == 2;
  bool has_row = false;
  for (const Instr& ins : plan->instrs) has_row |= IsRowOp(ins.op);
  if (has_row && !rank2) return nullptr;
  plan->row_tiled = rank2;
  if (rank2) {
    plan->rows = plan->shape.rows();
    plan->cols = plan->shape.cols();
    plan->tile_elems =
        std::max<int64_t>(1, kTileElems / plan->cols) * plan->cols;
  } else {
    plan->cols = plan->n;
    plan->tile_elems = std::min<int64_t>(plan->n, kTileElems);
  }

  const size_t num_values = plan->values.size();
  const int32_t num_live = static_cast<int32_t>(plan->instrs.size());

  // Last use of each value as an operand, in live-instruction index space.
  std::vector<int32_t> last_use(num_values, -1);
  for (int32_t li = 0; li < num_live; ++li) {
    const Instr& ins = plan->instrs[static_cast<size_t>(li)];
    last_use[static_cast<size_t>(ins.a)] = li;
    if (ins.b >= 0) last_use[static_cast<size_t>(ins.b)] = li;
  }

  // Saved set: intermediates whose forward data some backward step will
  // actually read (gated on the same rg conditions the steps run under).
  std::vector<char> needs_data(num_values, 0);
  if (plan->has_backward) {
    auto rg = [&](int32_t v) {
      return plan->values[static_cast<size_t>(v)].requires_grad;
    };
    for (const Instr& ins : plan->instrs) {
      if (!rg(ins.out)) continue;  // step skipped, reads nothing
      switch (ins.op) {
        case OpCode::kMul:
          if (rg(ins.a)) needs_data[static_cast<size_t>(ins.b)] = 1;
          if (rg(ins.b)) needs_data[static_cast<size_t>(ins.a)] = 1;
          break;
        case OpCode::kRowMul:
        case OpCode::kScalMul:
          if (rg(ins.a)) needs_data[static_cast<size_t>(ins.b)] = 1;
          if (rg(ins.b)) needs_data[static_cast<size_t>(ins.a)] = 1;
          break;
        case OpCode::kRelu:
          if (rg(ins.a)) needs_data[static_cast<size_t>(ins.a)] = 1;
          break;
        case OpCode::kUnary:
          if (rg(ins.a)) {
            if (ewise::UnaryNeedsX(ins.ukind)) {
              needs_data[static_cast<size_t>(ins.a)] = 1;
            }
            if (ewise::UnaryNeedsY(ins.ukind)) {
              needs_data[static_cast<size_t>(ins.out)] = 1;
            }
          }
          break;
        default:
          break;  // Add/Sub/Scale/AddConst backward reads no forward data
      }
    }
  }

  // Storage assignment. Inputs read from parents, the output from the
  // replay buffer, saved intermediates from full-size arena regions,
  // everything else from tile-sized scratch slots.
  for (size_t v = 0; v < num_values; ++v) {
    ValueInfo& info = plan->values[v];
    if (!info.live) continue;
    if (info.is_input) {
      info.storage = Storage::kInput;
    } else if (static_cast<int32_t>(v) == out_id) {
      info.storage = Storage::kOutput;
    } else if (needs_data[v]) {
      info.storage = Storage::kSaved;
      info.offset = plan->saved_floats;
      plan->saved_floats += plan->n;
    } else {
      info.storage = Storage::kScratch;
    }
  }

  // Linear-scan scratch planner (forward): allocate a slot at each
  // scratch value's def, recycle it after its last use. Operand slots are
  // freed only after the def's slot is taken so kernels never alias their
  // output with an operand.
  {
    std::vector<int32_t> free_slots;
    int32_t next_slot = 0;
    for (int32_t li = 0; li < num_live; ++li) {
      const Instr& ins = plan->instrs[static_cast<size_t>(li)];
      ValueInfo& out_info = plan->values[static_cast<size_t>(ins.out)];
      if (out_info.storage == Storage::kScratch) {
        if (free_slots.empty()) {
          out_info.scratch_slot = next_slot++;
        } else {
          out_info.scratch_slot = free_slots.back();
          free_slots.pop_back();
        }
      }
      auto release = [&](int32_t operand) {
        if (operand < 0) return;
        const ValueInfo& info = plan->values[static_cast<size_t>(operand)];
        if (info.storage == Storage::kScratch &&
            last_use[static_cast<size_t>(operand)] == li) {
          free_slots.push_back(info.scratch_slot);
        }
      };
      release(ins.a);
      if (ins.b != ins.a) release(ins.b);
    }
    plan->num_scratch_slots = next_slot;
  }

  // Linear-scan grad-region planner (backward): a region is first written
  // at a value's last consumer and last read at its def, so walk the
  // instruction list in the backward program's (reverse) order, allocating
  // at last consumers and recycling after defs.
  if (plan->has_backward) {
    std::vector<int64_t> free_regions;
    int64_t num_regions = 0;
    auto needs_region = [&](int32_t v) {
      const ValueInfo& info = plan->values[static_cast<size_t>(v)];
      return info.live && !info.is_input && v != out_id &&
             info.requires_grad;
    };
    for (int32_t li = num_live - 1; li >= 0; --li) {
      const Instr& ins = plan->instrs[static_cast<size_t>(li)];
      auto acquire = [&](int32_t operand) {
        if (operand < 0 || !needs_region(operand)) return;
        if (last_use[static_cast<size_t>(operand)] != li) return;
        ValueInfo& info = plan->values[static_cast<size_t>(operand)];
        int64_t region;
        if (free_regions.empty()) {
          region = num_regions++;
        } else {
          region = free_regions.back();
          free_regions.pop_back();
        }
        info.grad_offset = region * plan->n;
        info.grad_zero_at = li;
      };
      acquire(ins.a);
      if (ins.b != ins.a) acquire(ins.b);
      // The def step read this value's grad for the last time: recycle.
      if (needs_region(ins.out)) {
        free_regions.push_back(
            plan->values[static_cast<size_t>(ins.out)].grad_offset /
            plan->n);
      }
    }
    plan->grad_floats = num_regions * plan->n;
  }

  NotePlanAlive(plan->arena_bytes());
  plan->stats_noted = true;
  return plan;
}

Tensor CompiledPlan::Replay(const std::vector<Tensor>& inputs) const {
  LOGCL_CHECK_EQ(static_cast<int32_t>(inputs.size()), num_inputs);
  // Inline input-pointer table: replay must not allocate beyond the output
  // and the arena. Chains take a handful of inputs; spill if ever exceeded.
  constexpr size_t kInlineInputs = 8;
  const float* inline_in[kInlineInputs];
  std::vector<const float*> spill_in;
  const float** in = inline_in;
  if (inputs.size() > kInlineInputs) {
    spill_in.resize(inputs.size());
    in = spill_in.data();
  }
  for (size_t i = 0; i < inputs.size(); ++i) in[i] = inputs[i].data().data();

  std::vector<float> out =
      AcquireBuffer(static_cast<size_t>(n), BufferFill::kUninit);
  // One arena acquisition covers every saved intermediate and every grad
  // region for this replay (kUninit: forward fully writes the saved
  // region; grad regions are zeroed at their first accumulation step).
  std::shared_ptr<PooledBuffer> arena;
  if (saved_floats + grad_floats > 0) {
    arena = std::make_shared<PooledBuffer>(
        static_cast<size_t>(saved_floats + grad_floats), BufferFill::kUninit);
  }
  ExecuteForward(*this, in, out.data(),
                 arena == nullptr ? nullptr : arena->data());

  std::vector<Tensor> parents(inputs.begin(), inputs.end());
  if (!has_backward) {
    return Tensor::MakeOpOutput(shape, std::move(out), std::move(parents),
                                nullptr);
  }
  std::shared_ptr<const CompiledPlan> self = shared_from_this();
  return Tensor::MakeOpOutput(
      shape, std::move(out), std::move(parents),
      [self, arena](Node& node) {
        ExecBackward(*self, node,
                     arena == nullptr ? nullptr : arena->data());
      });
}

}  // namespace internal
}  // namespace jit
}  // namespace logcl
