// EdgeCsr: a destination-grouped CSR layout over an edge list, shared by the
// fused message-passing kernels, their backwards, and the scatter/segment
// ops. Built once per graph (see SnapshotGraph::DstCsr) and captured by
// backward closures via shared_ptr, so a layout outlives neither rebuilds of
// its graph nor the tape that references it.

#ifndef LOGCL_TENSOR_EDGE_CSR_H_
#define LOGCL_TENSOR_EDGE_CSR_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace logcl {

/// Immutable CSR view keyed by an arbitrary per-edge destination id (node,
/// relation, or softmax segment).
struct EdgeCsr {
  int64_t num_rows = 0;   // destination rows
  int64_t num_edges = 0;
  /// Edge ids grouped by destination; within one destination, ascending edge
  /// id (counting sort is stable), so per-row accumulation in CSR order is
  /// bitwise identical to an edge-order scan of the original list.
  std::vector<int64_t> edge_order;
  /// edge_order[offsets[r] .. offsets[r+1]) are the edges targeting row r.
  std::vector<int64_t> offsets;  // size num_rows + 1
  /// 1 / in-degree per destination (0 for rows receiving nothing) — the
  /// 1/c_o normalisation of Eq.4, shared so ScatterMeanRows and the fused
  /// kernel never recount degrees.
  std::vector<float> inv_in_degree;

  int64_t degree(int64_t row) const {
    return offsets[static_cast<size_t>(row) + 1] -
           offsets[static_cast<size_t>(row)];
  }

  /// Counting-sorts `dst` (all values in [0, num_rows)) into a layout.
  static std::shared_ptr<const EdgeCsr> Build(const std::vector<int64_t>& dst,
                                              int64_t num_rows);
};

using EdgeCsrPtr = std::shared_ptr<const EdgeCsr>;

}  // namespace logcl

#endif  // LOGCL_TENSOR_EDGE_CSR_H_
