// Graph-capture JIT executor for elementwise op chains.
//
// LogCL's per-step op DAG is shape-static: every training step and every
// serving batch replays the same encoder -> decoder -> loss graph over
// identical tensor shapes. The eager autograd pays per op anyway — one
// dispatch, one pool lookup, one TensorNode allocation, one std::function
// backward closure. A ChainCache removes those per-op costs for the
// elementwise/activation/scale chains that sit between the matmul and
// message-passing kernels in the hot loops (GRU gates, the local encoder's
// time gate, the lambda query fusion, the decoder projection epilogue):
//
//   capture  — the first call with a given input signature runs the builder
//              eagerly under a thread-local trace; ops.cc's elementwise ops
//              self-report into the trace as they execute, producing a
//              linearized instruction list over a small value table.
//   fuse     — compilation (jit_fusion.cc) dead-code-eliminates the trace
//              and merges the surviving chain into single fused loop
//              kernels driven by the tensor/simd.h tables — one pass over
//              the data per tile instead of one pass per op.
//   plan     — a static buffer planner linear-scans value lifetimes and
//              assigns offsets into one arena per plan: tile-sized scratch
//              slots for short-lived intermediates, full-size saved/grad
//              regions for what backward needs. Replay allocates the arena
//              in one pool acquisition instead of one per op.
//   replay   — later calls with the same signature run the straight-line
//              plan: no per-op dispatch, no per-op pool lookups, and one
//              autograd node (with a recorded backward program) for the
//              whole segment instead of one per op.
//
// Determinism contract: replay is bitwise identical to eager at any thread
// count. Fused tiles execute the same per-element IEEE arithmetic (same
// simd kernels, same ewise formulas), and the recorded backward program
// re-runs the exact eager gradient loops (same grains, same reduction
// shapes) in the same descending-sequence order the tape would.
//
// Anything the tracer does not understand — an op without a trace hook
// (MatMul, reductions, RNG ops), an operand from outside the input set, a
// broadcast against a non-input — poisons the capture; the signature is
// then remembered as uncompilable and that call site stays eager. Shape or
// requires_grad changes simply miss the signature and re-capture.
// LOGCL_JIT=0 (the default this PR) bypasses everything.

#ifndef LOGCL_TENSOR_JIT_H_
#define LOGCL_TENSOR_JIT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/elementwise_kernels.h"
#include "tensor/tensor.h"

namespace logcl {
namespace jit {

/// True when ChainCache capture/replay is active (LOGCL_JIT=1; default off).
bool JitEnabled();
/// Overrides the env default (tests/benchmarks). Disabling mid-process is an
/// instant bypass: every subsequent Run() calls its builder eagerly; cached
/// plans are kept and resume if re-enabled.
void SetJitEnabled(bool enabled);

/// JIT observability counters (monotonic since ResetJitStats()). The same
/// values surface as `logcl.jit.*` in MetricsRegistry::Snapshot() via a
/// registered source (common/observability.h, DESIGN.md §12/§14).
struct JitStats {
  uint64_t plans_captured = 0;    // traces compiled into live plans
  uint64_t replays = 0;           // Run() calls served by a compiled plan
  uint64_t fusions_applied = 0;   // op merges (live instrs - 1 per plan)
  uint64_t eager_fallbacks = 0;   // Run() calls that ran the builder while
                                  // enabled (uncompilable / cache overflow)
  uint64_t capture_failures = 0;  // traces rejected by the compiler
  uint64_t invalidations = 0;     // signature misses on a warm cache
  int64_t arena_bytes = 0;        // gauge: per-replay arena bytes, summed
                                  // over live plans
  int64_t plans_live = 0;         // gauge: compiled plans currently alive
};

/// Snapshot of the counters (cheap; relaxed atomic reads).
JitStats JitSnapshot();
/// Zeroes the monotonic counters (gauges track live plans and are left).
void ResetJitStats();

namespace internal {
struct CompiledPlan;
struct TraceState;

// Thread-local capture state; non-null only while a ChainCache builder runs
// under trace. Exposed so the hot-path hooks below stay inline.
extern thread_local TraceState* g_trace;

inline bool Tracing() { return g_trace != nullptr; }

void NoteNodeCreatedSlow();

/// Called by Tensor::MakeOpOutput for every op-output node. During capture
/// this counts ALL nodes created, traced or not; compilation rejects any
/// trace whose node count exceeds its instruction count, so an op without a
/// trace hook automatically poisons the segment it appears in.
inline void NoteNodeCreated() {
  if (g_trace != nullptr) NoteNodeCreatedSlow();
}

/// Broadcast mode of a traced binary op (mirrors ops.cc's BroadcastMode).
enum class TraceBroadcast : uint8_t { kSame, kScalarB, kRowB };

// Trace hooks, called by ops.cc immediately after MakeOpOutput when
// Tracing(). Each records one instruction or poisons the capture.
void TraceBinary(ewise::BinaryKind kind, TraceBroadcast broadcast,
                 const Tensor& a, const Tensor& b, const Tensor& out);
void TraceUnary(ewise::UnaryKind kind, float param, const Tensor& x,
                const Tensor& out);
void TraceRelu(const Tensor& x, const Tensor& out);
void TraceScale(const Tensor& a, float s, const Tensor& out);
void TraceAddScalar(const Tensor& a, float s, const Tensor& out);

}  // namespace internal

/// A per-call-site capture cache: keys compiled plans by the input
/// signature (grad mode, shapes, requires_grad flags, aliasing) and decides
/// per call between replay, capture, and eager fallback.
///
/// Usage: give each distinct chain its own ChainCache (usually a mutable
/// member next to the weights it combines) and a builder that constructs
/// the chain from inputs[0..k-1] with ops from tensor/ops.h:
///
///   Tensor GateChain(const std::vector<Tensor>& in) {
///     return ops::Sigmoid(ops::Add(in[0], in[1]));
///   }
///   ...
///   Tensor gate = gate_cache_.Run({pre, bias}, GateChain);
///
/// Run() returns exactly what the builder would: the first call per
/// signature runs it eagerly (under trace), later calls replay the plan.
/// Thread-safe: concurrent replays share the plan without serialising.
class ChainCache {
 public:
  using Builder = std::function<Tensor(const std::vector<Tensor>&)>;

  ChainCache();
  ~ChainCache();
  ChainCache(const ChainCache&) = delete;
  ChainCache& operator=(const ChainCache&) = delete;

  /// Runs the chain over `inputs`, via a compiled plan when one matches.
  /// Bypasses (plain eager call) when the JIT is disabled or a capture is
  /// already active on this thread — a nested Run() inside another cache's
  /// builder folds its ops into the outer trace instead.
  Tensor Run(const std::vector<Tensor>& inputs, const Builder& build);

  /// Compiled plans currently cached (tests/diagnostics).
  int num_plans() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace jit
}  // namespace logcl

#endif  // LOGCL_TENSOR_JIT_H_
