#include "tensor/edge_csr.h"

#include "common/logging.h"

namespace logcl {

std::shared_ptr<const EdgeCsr> EdgeCsr::Build(const std::vector<int64_t>& dst,
                                              int64_t num_rows) {
  LOGCL_CHECK_GE(num_rows, 0);
  auto csr = std::make_shared<EdgeCsr>();
  csr->num_rows = num_rows;
  csr->num_edges = static_cast<int64_t>(dst.size());
  csr->offsets.assign(static_cast<size_t>(num_rows) + 1, 0);
  for (int64_t d : dst) {
    LOGCL_CHECK_GE(d, 0);
    LOGCL_CHECK_LT(d, num_rows);
    ++csr->offsets[static_cast<size_t>(d) + 1];
  }
  for (int64_t r = 0; r < num_rows; ++r) {
    csr->offsets[static_cast<size_t>(r) + 1] +=
        csr->offsets[static_cast<size_t>(r)];
  }
  csr->edge_order.resize(dst.size());
  std::vector<int64_t> cursor(csr->offsets.begin(), csr->offsets.end() - 1);
  for (int64_t e = 0; e < csr->num_edges; ++e) {
    csr->edge_order[static_cast<size_t>(
        cursor[static_cast<size_t>(dst[static_cast<size_t>(e)])]++)] = e;
  }
  csr->inv_in_degree.resize(static_cast<size_t>(num_rows));
  for (int64_t r = 0; r < num_rows; ++r) {
    int64_t deg = csr->degree(r);
    csr->inv_in_degree[static_cast<size_t>(r)] =
        deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
  }
  return csr;
}

}  // namespace logcl
