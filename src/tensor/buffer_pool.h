// Pooled tensor memory: a size-bucketed buffer pool recycling the
// std::vector<float> storage behind TensorNode data/grad and kernel scratch.
//
// Why: one LogCL training step rebuilds the autograd tape from scratch —
// omega R-GCN layers per snapshot x m local timesteps x two forward phases —
// so an epoch materialises tens of thousands of short-lived buffers whose
// sizes repeat exactly across steps. Recycling them sidesteps the general
// purpose allocator (and, for kernels that fully overwrite their output, the
// redundant zero-fill a fresh std::vector<float>(n) forces).
//
// Design notes:
//  - Buckets are keyed by exact element count. Successive steps request the
//    same sizes, so steady-state hit rates approach 100% after step one.
//  - Two tiers: a lock-free thread-local cache (bounded bytes, spills to the
//    global tier) in front of a mutex-protected global map. Worker threads
//    recycle their kernel scratch entirely within their own cache; the
//    global tier hands buffers across threads with the mutex providing the
//    happens-before edge.
//  - Determinism contract: results are bitwise identical with the pool on or
//    off, at any thread count. This holds because every kUninit acquisition
//    is fully overwritten before it is read (LOGCL_POISON_UNINIT=1 fills
//    recycled/uninitialised buffers with signalling NaNs so a kernel that
//    reads before writing fails loudly in tests).
//  - Invariant: a pooled buffer is never aliased by two live owners. Acquire
//    pops the buffer out of the free list; Release is only called by owners
//    giving up their storage (TensorNode destruction, PooledBuffer scope
//    exit, Backward's grad recycling).
//  - The global tier is byte-capped (LOGCL_POOL_MAX_MB, default 1024).
//    Workloads whose allocation sizes drift — streaming ingest grows
//    history-dependent tensor shapes every snapshot — would otherwise strand
//    every superseded size in a bucket nothing ever pops again, growing the
//    process without bound. Exceeding the cap drops all pooled buffers; the
//    live working set re-pools within an iteration.
//  - Env toggles: LOGCL_TENSOR_POOL=0 restores malloc-per-op (Acquire always
//    allocates fresh zeroed storage, Release frees); LOGCL_POISON_UNINIT=1
//    enables the poison-fill debug mode; LOGCL_POOL_MAX_MB=0 removes the
//    global-tier cap.

#ifndef LOGCL_TENSOR_BUFFER_POOL_H_
#define LOGCL_TENSOR_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace logcl {

/// Requested initialisation of an acquired buffer. kZero is always all
/// zeros; kUninit leaves recycled contents in place (poisoned with
/// signalling NaNs under LOGCL_POISON_UNINIT=1) and is only safe when the
/// caller fully overwrites the buffer before reading it.
enum class BufferFill { kZero, kUninit };

/// True when recycling is active (default; LOGCL_TENSOR_POOL=0 disables).
bool BufferPoolEnabled();
/// Overrides the env default (tests/benchmarks). Disabling drops the global
/// free lists and the calling thread's cache so held memory is returned.
void SetBufferPoolEnabled(bool enabled);

/// True when kUninit acquisitions are filled with signalling NaNs
/// (LOGCL_POISON_UNINIT=1; see BufferFill).
bool PoisonUninitEnabled();
void SetPoisonUninitEnabled(bool enabled);

/// Byte cap on the global free-list tier (LOGCL_POOL_MAX_MB; 0 =
/// unbounded). Crossing it drops every pooled buffer — see the file
/// comment on size drift. Thread-local caches have their own fixed bound.
int64_t BufferPoolCapBytes();
void SetBufferPoolCapBytes(int64_t cap_bytes);

/// Returns a buffer with exactly `num_elements` elements, recycled when the
/// pool holds one of that size. See BufferFill for the contents contract.
std::vector<float> AcquireBuffer(size_t num_elements, BufferFill fill);

/// Returns storage to the pool (or frees it when the pool is disabled).
/// The argument is left empty. Empty buffers are a no-op.
void ReleaseBuffer(std::vector<float>&& buffer);

/// Records a caller-allocated buffer becoming tensor storage (FromVector and
/// friends) so the live/outstanding counters stay exact: such buffers are
/// released like any other on node destruction.
void NoteAdoptedBuffer(size_t num_elements);

/// Allocation-observability counters (monotonic since ResetPoolStats()).
struct BufferPoolStats {
  uint64_t acquires = 0;         // AcquireBuffer calls
  uint64_t hits = 0;             // served from a free list
  uint64_t misses = 0;           // fresh heap allocation
  uint64_t releases = 0;         // buffers returned (pooled or freed)
  uint64_t adoptions = 0;        // NoteAdoptedBuffer calls
  uint64_t bytes_requested = 0;  // cumulative bytes across acquires
  uint64_t live_bytes = 0;       // bytes currently checked out / adopted
  uint64_t peak_live_bytes = 0;  // high-water mark of live_bytes
  uint64_t outstanding_buffers = 0;  // live buffer count
  uint64_t pooled_buffers = 0;   // buffers sitting in free lists
  uint64_t pooled_bytes = 0;     // bytes sitting in free lists

  /// Fraction of acquires served from a free list (0 when none yet).
  double HitRate() const {
    return acquires == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(acquires);
  }

  /// One-line rendering for logs/benchmarks.
  std::string ToString() const;
};

/// Snapshot of the counters (cheap; relaxed atomic reads). The same values
/// surface as `logcl.pool.*` in MetricsRegistry::Snapshot() / DumpMetrics
/// via a registered source (see common/observability.h and DESIGN.md §12).
BufferPoolStats PoolSnapshot();
void ResetPoolStats();

/// Drops every buffer in the global free lists and the calling thread's
/// cache (other threads' caches flush when those threads exit).
void TrimBufferPool();

/// RAII pooled scratch buffer for kernel internals: acquires on
/// construction, releases on scope exit. Movable, not copyable.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(size_t num_elements, BufferFill fill)
      : buffer_(AcquireBuffer(num_elements, fill)) {}
  ~PooledBuffer() { ReleaseBuffer(std::move(buffer_)); }

  PooledBuffer(PooledBuffer&& other) noexcept
      : buffer_(std::move(other.buffer_)) {
    other.buffer_.clear();
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      ReleaseBuffer(std::move(buffer_));
      buffer_ = std::move(other.buffer_);
      other.buffer_.clear();
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  float* data() { return buffer_.data(); }
  const float* data() const { return buffer_.data(); }
  size_t size() const { return buffer_.size(); }
  float& operator[](size_t i) { return buffer_[i]; }
  float operator[](size_t i) const { return buffer_[i]; }

 private:
  std::vector<float> buffer_;
};

}  // namespace logcl

#endif  // LOGCL_TENSOR_BUFFER_POOL_H_
