// Tensor: a shared handle to a dense float32 array participating in a
// define-by-run reverse-mode autograd tape.
//
// Design notes:
//  - Value semantics on the handle, shared ownership of the underlying node.
//    Copying a Tensor aliases the same storage (as in PyTorch).
//  - Ops (tensor/ops.h) record a backward closure on the output node; calling
//    Backward(loss) runs the tape in reverse topological order.
//  - A thread-local grad-mode flag (NoGradGuard) disables tape recording
//    during evaluation so inference never retains graph memory. Thread-local
//    because a NoGradGuard on one thread must not leak into concurrent tensor
//    construction on another (ops always run on the thread that called them;
//    pool workers only execute raw float kernels).
//  - data/grad storage is recycled through the size-bucketed buffer pool
//    (tensor/buffer_pool.h): factories acquire from it and ~TensorNode
//    returns both buffers, so steady-state training stops hitting the
//    general-purpose allocator. LOGCL_TENSOR_POOL=0 restores malloc-per-op.

#ifndef LOGCL_TENSOR_TENSOR_H_
#define LOGCL_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/shape.h"

namespace logcl {

class Tensor;

namespace internal_tensor {

/// Heap node holding storage, gradient and tape linkage for one tensor.
struct TensorNode {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // allocated lazily, same size as data
  bool requires_grad = false;
  // Inputs of the op that produced this node (kept alive for backward).
  std::vector<std::shared_ptr<TensorNode>> parents;
  // Accumulates this node's grad into its parents' grads.
  std::function<void(TensorNode&)> backward_fn;
  // Monotonic creation index; used for reverse-topological replay.
  uint64_t sequence = 0;

  /// Returns data and grad storage to the buffer pool.
  ~TensorNode();

  /// Allocates grad (zeroed, same size as data) from the pool on demand.
  void EnsureGrad();
};

}  // namespace internal_tensor

/// True while gradients are being recorded on this thread (default). See
/// NoGradGuard.
bool GradModeEnabled();

/// RAII scope that disables autograd recording on the current thread (e.g.
/// during evaluation). Other threads' grad mode is unaffected.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Shared handle to a dense float tensor (see file comment).
class Tensor {
 public:
  /// An empty (null) handle; most APIs require a non-null tensor.
  Tensor() = default;

  /// Factories. `requires_grad` marks the tensor as a trainable leaf.
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  /// Pool-recycled storage with UNSPECIFIED contents — for op outputs whose
  /// kernel fully overwrites every element before any read. Reading an
  /// element that was never written is a bug (LOGCL_POISON_UNINIT=1 makes it
  /// fail loudly by poisoning with signalling NaNs).
  static Tensor Uninitialized(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value, bool requires_grad = false);
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);
  /// Xavier/Glorot uniform init for a [fan_in, fan_out]-ish weight.
  static Tensor XavierUniform(const Shape& shape, Rng* rng,
                              bool requires_grad = true);
  /// i.i.d. N(0, stddev^2) entries.
  static Tensor RandomNormal(const Shape& shape, float stddev, Rng* rng,
                             bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }

  const Shape& shape() const;
  int64_t num_elements() const { return shape().num_elements(); }

  const std::vector<float>& data() const;
  /// Mutable access to raw storage. Mutating data of a non-leaf tensor that
  /// is still on a live tape invalidates gradients; only do so for leaves or
  /// under NoGradGuard-produced tensors.
  std::vector<float>& mutable_data();

  bool requires_grad() const;
  void set_requires_grad(bool value);

  /// Gradient storage (allocated on demand). Only meaningful on leaves after
  /// Backward() unless retained explicitly.
  const std::vector<float>& grad() const;
  std::vector<float>& mutable_grad();
  void ZeroGrad();

  /// Flat element access (row-major).
  float at(int64_t index) const;
  /// 2-D element access.
  float at(int64_t row, int64_t col) const;

  /// Detached deep copy (no tape linkage, requires_grad=false).
  Tensor Clone() const;

  /// True if both handles alias the same storage.
  bool IsSameObject(const Tensor& other) const { return node_ == other.node_; }

  /// Debug rendering (shape + up to `max_values` entries).
  std::string ToString(int max_values = 16) const;

  // --- internal (used by ops.cc / backward.cc) -------------------------
  using NodePtr = std::shared_ptr<internal_tensor::TensorNode>;
  explicit Tensor(NodePtr node) : node_(std::move(node)) {}
  const NodePtr& node() const { return node_; }

  /// Creates a fresh node for an op output; wires parents/backward only when
  /// grad mode is on and some parent requires grad.
  static Tensor MakeOpOutput(
      const Shape& shape, std::vector<float> data,
      std::vector<Tensor> parents,
      std::function<void(internal_tensor::TensorNode&)> backward_fn);

 private:
  NodePtr node_;
};

/// Runs reverse-mode accumulation from `loss` (any shape; seed grad = 1).
void Backward(const Tensor& loss);

}  // namespace logcl

#endif  // LOGCL_TENSOR_TENSOR_H_
