// Tensor: a shared handle to a dense float32 array participating in a
// define-by-run reverse-mode autograd tape.
//
// Design notes:
//  - Value semantics on the handle, shared ownership of the underlying node.
//    Copying a Tensor aliases the same storage (as in PyTorch).
//  - Ops (tensor/ops.h) record a backward closure on the output node; calling
//    Backward(loss) runs the tape in reverse topological order.
//  - A thread-local grad-mode flag (NoGradGuard) disables tape recording
//    during evaluation so inference never retains graph memory. Thread-local
//    because a NoGradGuard on one thread must not leak into concurrent tensor
//    construction on another (ops always run on the thread that called them;
//    pool workers only execute raw float kernels).
//  - data/grad storage is recycled through the size-bucketed buffer pool
//    (tensor/buffer_pool.h): factories acquire from it and ~TensorNode
//    returns both buffers, so steady-state training stops hitting the
//    general-purpose allocator. LOGCL_TENSOR_POOL=0 restores malloc-per-op.

#ifndef LOGCL_TENSOR_TENSOR_H_
#define LOGCL_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/shape.h"

namespace logcl {

class Tensor;

namespace internal_tensor {

/// Heap node holding storage, gradient and tape linkage for one tensor.
struct TensorNode {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // allocated lazily, same size as data
  bool requires_grad = false;
  // Inputs of the op that produced this node (kept alive for backward).
  std::vector<std::shared_ptr<TensorNode>> parents;
  // Accumulates this node's grad into its parents' grads.
  std::function<void(TensorNode&)> backward_fn;
  // Monotonic creation index; used for reverse-topological replay.
  uint64_t sequence = 0;
  // Scratch owned by Backward() (tensor/backward.cc): the node is part of
  // the current traversal iff visit_epoch matches the pass's epoch (this
  // replaces a per-call hash set), and engine_index is its slot in the
  // engine's side arrays for that pass.
  uint64_t visit_epoch = 0;
  uint32_t engine_index = 0;

  /// Returns data and grad storage to the buffer pool.
  ~TensorNode();

  /// Allocates grad (zeroed, same size as data) from the pool on demand.
  void EnsureGrad();

  /// Grad storage for a backward kernel whose FIRST contribution overwrites
  /// every element. When grad is not yet allocated this returns a kUninit
  /// pool buffer and sets *fresh = true: the caller must then write ALL
  /// elements, computing each as `0.0f + contribution`, which is bitwise
  /// identical to zero-fill + accumulate (including the -0.0 -> +0.0
  /// normalisation an accumulate into a zeroed buffer performs). A partial
  /// write is a bug that LOGCL_POISON_UNINIT=1 surfaces as an sNaN read.
  /// When grad already exists (another consumer contributed first) it sets
  /// *fresh = false and the caller must accumulate as usual.
  float* GradForFullWrite(bool* fresh);
};

}  // namespace internal_tensor

/// True while gradients are being recorded on this thread (default). See
/// NoGradGuard.
bool GradModeEnabled();

/// RAII scope that disables autograd recording on the current thread (e.g.
/// during evaluation). Other threads' grad mode is unaffected.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Shared handle to a dense float tensor (see file comment).
class Tensor {
 public:
  /// An empty (null) handle; most APIs require a non-null tensor.
  Tensor() = default;

  /// Factories. `requires_grad` marks the tensor as a trainable leaf.
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  /// Pool-recycled storage with UNSPECIFIED contents — for op outputs whose
  /// kernel fully overwrites every element before any read. Reading an
  /// element that was never written is a bug (LOGCL_POISON_UNINIT=1 makes it
  /// fail loudly by poisoning with signalling NaNs).
  static Tensor Uninitialized(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value, bool requires_grad = false);
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);
  /// Xavier/Glorot uniform init for a [fan_in, fan_out]-ish weight.
  static Tensor XavierUniform(const Shape& shape, Rng* rng,
                              bool requires_grad = true);
  /// i.i.d. N(0, stddev^2) entries.
  static Tensor RandomNormal(const Shape& shape, float stddev, Rng* rng,
                             bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }

  const Shape& shape() const;
  int64_t num_elements() const { return shape().num_elements(); }

  const std::vector<float>& data() const;
  /// Mutable access to raw storage. Mutating data of a non-leaf tensor that
  /// is still on a live tape invalidates gradients; only do so for leaves or
  /// under NoGradGuard-produced tensors.
  std::vector<float>& mutable_data();

  bool requires_grad() const;
  void set_requires_grad(bool value);

  /// Gradient storage (allocated on demand). Only meaningful on leaves after
  /// Backward() unless retained explicitly.
  const std::vector<float>& grad() const;
  std::vector<float>& mutable_grad();
  void ZeroGrad();

  /// Flat element access (row-major).
  float at(int64_t index) const;
  /// 2-D element access.
  float at(int64_t row, int64_t col) const;

  /// Detached deep copy (no tape linkage, requires_grad=false).
  Tensor Clone() const;

  /// True if both handles alias the same storage.
  bool IsSameObject(const Tensor& other) const { return node_ == other.node_; }

  /// Debug rendering (shape + up to `max_values` entries).
  std::string ToString(int max_values = 16) const;

  // --- internal (used by ops.cc / backward.cc) -------------------------
  using NodePtr = std::shared_ptr<internal_tensor::TensorNode>;
  explicit Tensor(NodePtr node) : node_(std::move(node)) {}
  const NodePtr& node() const { return node_; }

  /// Creates a fresh node for an op output; wires parents/backward only when
  /// grad mode is on and some parent requires grad.
  static Tensor MakeOpOutput(
      const Shape& shape, std::vector<float> data,
      std::vector<Tensor> parents,
      std::function<void(internal_tensor::TensorNode&)> backward_fn);

 private:
  NodePtr node_;
};

/// Runs reverse-mode accumulation from `loss`, which must be a scalar (one
/// element; seed grad = 1). For a non-scalar root pass an explicit seed
/// gradient via the two-argument overload. With LOGCL_INTEROP=1 (the
/// default) and a multi-thread pool, independent branches of the graph run
/// concurrently on the shared thread pool with results bitwise-identical
/// to the serial replay at any thread count; see DESIGN.md §15.
void Backward(const Tensor& loss);

/// As above with an explicit seed gradient d(objective)/d(loss); seed_grad
/// must have the same element count as loss.
void Backward(const Tensor& loss, const Tensor& seed_grad);

/// Inter-op autograd engine toggle (env LOGCL_INTEROP, default on). Even
/// when enabled, the serial replay is used for one-thread pools, tiny
/// graphs, and Backward() calls issued from inside a parallel region.
bool InterOpEnabled();
void SetInterOpEnabled(bool enabled);

}  // namespace logcl

#endif  // LOGCL_TENSOR_TENSOR_H_
