// SparseAdamOptimizer: Adam that steps only the parameter rows touched by a
// batch, with lazy catch-up so touched rows are bitwise-equal to the dense
// AdamOptimizer at the same global step count.
//
// Dense Adam moves every row on every step (moment decay keeps pushing a row
// even after its gradient goes quiet), so "skip untouched rows" alone would
// diverge from the dense trajectory. Instead each row remembers the last
// global step it was brought up to date; when a row is touched again the
// intervening zero-gradient steps are replayed first (identical arithmetic,
// g = 0), then the real update applies. A row whose moments are bitwise zero
// (and with no weight decay) cannot move under a zero gradient, so its
// replay short-circuits — the common case for rarely-seen entities, which
// is what makes streaming fine-tune at ICEWS/GDELT scale CPU-tractable.
//
// CatchUp() replays every row to the current step, after which all
// parameters equal the dense optimizer's bitwise — call it before
// evaluation, checkpointing, or handing weights to a serving engine.

#ifndef LOGCL_TENSOR_SPARSE_ADAM_H_
#define LOGCL_TENSOR_SPARSE_ADAM_H_

#include <cstdint>
#include <vector>

#include "tensor/buffer_pool.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace logcl {

class SparseAdamOptimizer {
 public:
  explicit SparseAdamOptimizer(std::vector<Tensor> parameters,
                               AdamOptions options = {});

  /// Zeroes all parameter gradients (call before each forward/backward).
  void ZeroGrad();

  /// One global step updating only `touched_rows[i]` of parameter i (row
  /// indices into dim 0; rank-1 tensors treat each element as a row).
  /// Touched rows are first caught up through any skipped steps, so after
  /// the call they match what dense Adam would hold. Rows not listed stay
  /// lazy until their next touch or CatchUp().
  void Step(const std::vector<std::vector<int64_t>>& touched_rows);

  /// Scans a parameter's gradient and returns the rows with any nonzero
  /// element, ascending — the honest way to build `touched_rows` (LogCL's
  /// softmax task loss makes entity-embedding gradients dense, so measured
  /// sparsity comes from scans, not assumptions).
  static std::vector<int64_t> NonZeroGradRows(const Tensor& parameter);

  /// Replays every lagging row to the current global step. Afterwards all
  /// parameters and moments are bitwise-equal to a dense AdamOptimizer that
  /// saw the same gradients.
  void CatchUp();

  /// Rows whose values changed since the last drain (per parameter,
  /// ascending) — feeds MmapCheckpoint::WritebackRows so a streaming
  /// session persists only dirty rows.
  std::vector<std::vector<int64_t>> DrainDirtyRows();

  int64_t num_steps() const { return step_; }
  const std::vector<Tensor>& parameters() const { return parameters_; }

 private:
  /// Brings row `row` of parameter `i` from last_step_ to `target_step`
  /// replaying zero-gradient updates; returns true if the row's state
  /// changed (for dirty tracking).
  bool ReplayRow(size_t i, int64_t row, int64_t target_step);

  std::vector<Tensor> parameters_;
  AdamOptions options_;
  int64_t step_ = 0;
  std::vector<PooledBuffer> moment1_;
  std::vector<PooledBuffer> moment2_;
  // Per parameter: dim-0 row count, payload elements per row, the last
  // global step each row was brought up to, and a dirty flag per row.
  std::vector<int64_t> num_rows_;
  std::vector<int64_t> row_len_;
  std::vector<std::vector<int64_t>> last_step_;
  std::vector<std::vector<uint8_t>> dirty_;
};

}  // namespace logcl

#endif  // LOGCL_TENSOR_SPARSE_ADAM_H_
