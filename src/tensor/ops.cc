#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/observability.h"
#include "common/parallel.h"
#include "common/runtime_config.h"
#include "tensor/buffer_pool.h"
#include "tensor/elementwise_kernels.h"
#include "tensor/jit.h"
#include "tensor/simd.h"

namespace logcl {
namespace ops {
namespace {

using Node = internal_tensor::TensorNode;

// Pool-backed op-output storage. UninitOut elides the zero-fill and is only
// used by kernels that overwrite every output element before any read
// (LOGCL_POISON_UNINIT=1 verifies this); ZeroOut is for kernels that
// accumulate into their output. Scratch that lives inside a closure and is
// heap-freed by the closure's destructor stays a plain vector — only buffers
// whose release we control route through the pool.
inline std::vector<float> UninitOut(int64_t n) {
  return AcquireBuffer(static_cast<size_t>(n), BufferFill::kUninit);
}
inline std::vector<float> ZeroOut(int64_t n) {
  return AcquireBuffer(static_cast<size_t>(n), BufferFill::kZero);
}
inline std::vector<float> ScalarOut(float value) {
  std::vector<float> out = AcquireBuffer(1, BufferFill::kUninit);
  out[0] = value;
  return out;
}

// Fixed eval slope for RRelu: mean of the torch default [1/8, 1/3] range.
constexpr float kRReluLower = 1.0f / 8.0f;
constexpr float kRReluUpper = 1.0f / 3.0f;
constexpr float kRReluEvalSlope = (kRReluLower + kRReluUpper) / 2.0f;

// Minimum elements per shard before a loop is split across the pool. For
// ParallelReduce calls the grain also fixes chunk boundaries, so it must
// depend only on problem shape (never on the thread count) to keep results
// identical at 1 vs N threads.
constexpr int64_t kGrain = 8192;

// Rows per shard so one shard covers at least kGrain elements.
inline int64_t RowGrain(int64_t cols) {
  return std::max<int64_t>(1, kGrain / std::max<int64_t>(1, cols));
}

// Broadcast modes supported by the elementwise binary ops.
enum class BroadcastMode { kSame, kScalarB, kRowB };

BroadcastMode ResolveBroadcast(const Shape& a, const Shape& b) {
  if (a == b) return BroadcastMode::kSame;
  if (b.rank() == 0) return BroadcastMode::kScalarB;
  if (a.rank() == 2) {
    if (b.rank() == 1 && b.dim(0) == a.cols()) return BroadcastMode::kRowB;
    if (b.rank() == 2 && b.rows() == 1 && b.cols() == a.cols()) {
      return BroadcastMode::kRowB;
    }
  }
  LOGCL_CHECK(false) << "incompatible broadcast: " << a.ToString() << " vs "
                     << b.ToString();
  return BroadcastMode::kSame;
}

// Index of the b element feeding a's flat index i.
inline int64_t BroadcastIndex(BroadcastMode mode, int64_t i, int64_t cols) {
  switch (mode) {
    case BroadcastMode::kSame:
      return i;
    case BroadcastMode::kScalarB:
      return 0;
    case BroadcastMode::kRowB:
      return i % cols;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Blocked accumulate-matmul kernels (C += op(A) * op(B)) live in
// tensor/simd.{h,cc} behind runtime ISA dispatch; the scalar variants there
// are the tiled kernels that used to live here, so the per-element
// accumulation orders (and thread-count invariance) are unchanged. Aliases
// keep the call sites below reading as before.
// ---------------------------------------------------------------------------

using simd::kTileCols;
using simd::MatMulAccumNN;
using simd::MatMulAccumNT;
using simd::MatMulAccumTN;
using simd::MatMulRowGrain;

// Which arithmetic op an ElementwiseBinary call is, when it is one the SIMD
// layer has a dedicated kernel for. The same-shape fast paths dispatch on
// this instead of the lambdas; the SIMD kernels are bitwise-equal to the
// per-element loops (see tensor/simd.h). Shared with the JIT tracer, which
// captures exactly these kinds (tensor/elementwise_kernels.h).
using BinOpKind = ewise::BinaryKind;

// ops.cc broadcast mode -> the tracer's mirror enum.
inline jit::internal::TraceBroadcast ToTraceBroadcast(BroadcastMode mode) {
  switch (mode) {
    case BroadcastMode::kSame:
      return jit::internal::TraceBroadcast::kSame;
    case BroadcastMode::kScalarB:
      return jit::internal::TraceBroadcast::kScalarB;
    case BroadcastMode::kRowB:
      return jit::internal::TraceBroadcast::kRowB;
  }
  return jit::internal::TraceBroadcast::kSame;
}

// Shared implementation for Add/Sub/Mul.
template <typename ForwardFn, typename BackwardFn>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, ForwardFn fwd,
                         BackwardFn bwd,
                         BinOpKind kind = BinOpKind::kGeneric) {
  LOGCL_CHECK(a.defined());
  LOGCL_CHECK(b.defined());
  BroadcastMode mode = ResolveBroadcast(a.shape(), b.shape());
  int64_t n = a.num_elements();
  int64_t cols = a.shape().rank() == 2 ? a.shape().cols() : n;
  const float* av = a.data().data();
  const float* bv = b.data().data();
  std::vector<float> out = UninitOut(n);
  float* od = out.data();
  if (mode == BroadcastMode::kSame) {
    // Dedicated same-shape path: the dominant case on the autograd hot path.
    // Known arithmetic kinds go through the dispatched SIMD kernels; both
    // are per-element identical to the general loop below.
    ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
      switch (kind) {
        case BinOpKind::kAdd:
          simd::Add(av + i0, bv + i0, od + i0, i1 - i0);
          break;
        case BinOpKind::kSub:
          simd::Sub(av + i0, bv + i0, od + i0, i1 - i0);
          break;
        case BinOpKind::kMul:
          simd::Mul(av + i0, bv + i0, od + i0, i1 - i0);
          break;
        case BinOpKind::kGeneric:
          for (int64_t i = i0; i < i1; ++i) od[i] = fwd(av[i], bv[i]);
          break;
      }
    });
  } else {
    ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        od[i] = fwd(av[i], bv[BroadcastIndex(mode, i, cols)]);
      }
    });
  }
  Tensor result = Tensor::MakeOpOutput(
      a.shape(), std::move(out), {a, b},
      [mode, n, cols, bwd, kind](Node& node) {
        const auto& pa = node.parents[0];
        const auto& pb = node.parents[1];
        const float* g = node.grad.data();
        const float* ad = pa->data.data();
        const float* bd = pb->data.data();
        // Every path below fully covers the live grad buffers, so first
        // contributions take the kUninit fresh path (store 0 + term,
        // bitwise-equal to zero-fill + accumulate). Aliased parents
        // (Add(a, a)) get fresh on the first call only: the second
        // GradForFullWrite sees a sized buffer and accumulates.
        float* ga = nullptr;
        float* gb = nullptr;
        bool fresh_a = false;
        bool fresh_b = false;
        if (pa->requires_grad) ga = pa->GradForFullWrite(&fresh_a);
        if (pb->requires_grad) gb = pb->GradForFullWrite(&fresh_b);
        if (mode == BroadcastMode::kSame) {
          if (kind != BinOpKind::kGeneric) {
            // SIMD grad accumulation. Each kernel call is per-element
            // identical to the generic loop: Add/Sub propagate g (Sub's b
            // side as the exact negation (-1)*g), Mul cross-multiplies by
            // the co-factor with mul-then-add rounding, same as `da = g*y;
            // ga[i] += da`.
            ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
              const int64_t len = i1 - i0;
              switch (kind) {
                case BinOpKind::kAdd:
                  if (ga != nullptr) {
                    (fresh_a ? simd::AccumulateFresh
                             : simd::Accumulate)(g + i0, ga + i0, len);
                  }
                  if (gb != nullptr) {
                    (fresh_b ? simd::AccumulateFresh
                             : simd::Accumulate)(g + i0, gb + i0, len);
                  }
                  break;
                case BinOpKind::kSub:
                  if (ga != nullptr) {
                    (fresh_a ? simd::AccumulateFresh
                             : simd::Accumulate)(g + i0, ga + i0, len);
                  }
                  if (gb != nullptr) {
                    (fresh_b ? simd::AxpyFresh : simd::Axpy)(-1.0f, g + i0,
                                                             gb + i0, len);
                  }
                  break;
                case BinOpKind::kMul:
                  if (ga != nullptr) {
                    (fresh_a ? simd::MulAccumulateFresh
                             : simd::MulAccumulate)(g + i0, bd + i0, ga + i0,
                                                    len);
                  }
                  if (gb != nullptr) {
                    (fresh_b ? simd::MulAccumulateFresh
                             : simd::MulAccumulate)(g + i0, ad + i0, gb + i0,
                                                    len);
                  }
                  break;
                case BinOpKind::kGeneric:
                  break;
              }
            });
            return;
          }
          // No accumulation aliasing: one pass handles both sides, with
          // the null checks hoisted so each live variant stays branch-free
          // per element (shared with the JIT's fused backward kernels).
          ewise::SameShapeBinaryBackward(g, ad, bd, ga, gb, n, kGrain, bwd,
                                         fresh_a, fresh_b);
          return;
        }
        if (ga != nullptr) {
          ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
            if (fresh_a) {
              for (int64_t i = i0; i < i1; ++i) {
                float da = 0.0f, db = 0.0f;
                bwd(g[i], ad[i], bd[BroadcastIndex(mode, i, cols)], &da, &db);
                ga[i] = 0.0f + da;
              }
            } else {
              for (int64_t i = i0; i < i1; ++i) {
                float da = 0.0f, db = 0.0f;
                bwd(g[i], ad[i], bd[BroadcastIndex(mode, i, cols)], &da, &db);
                ga[i] += da;
              }
            }
          });
        }
        if (gb != nullptr && mode == BroadcastMode::kRowB) {
          // gb[j] accumulates over rows; shard by output column so every
          // column keeps the serial (row-order) accumulation order.
          int64_t rows = n / cols;
          ParallelFor(0, cols, RowGrain(rows), [&](int64_t j0, int64_t j1) {
            for (int64_t j = j0; j < j1; ++j) {
              float sum = fresh_b ? 0.0f : gb[j];
              for (int64_t i = j; i < n; i += cols) {
                float da = 0.0f, db = 0.0f;
                bwd(g[i], ad[i], bd[j], &da, &db);
                sum += db;
              }
              gb[j] = sum;
            }
          });
        } else if (gb != nullptr) {  // kScalarB
          float sum = ParallelReduce<float>(
              0, n, kGrain, 0.0f,
              [&](int64_t i0, int64_t i1) {
                float partial = 0.0f;
                for (int64_t i = i0; i < i1; ++i) {
                  float da = 0.0f, db = 0.0f;
                  bwd(g[i], ad[i], bd[0], &da, &db);
                  partial += db;
                }
                return partial;
              },
              [](float acc, float partial) { return acc + partial; });
          if (fresh_b) {
            gb[0] = 0.0f + sum;
          } else {
            gb[0] += sum;
          }
        }
      });
  if (jit::internal::Tracing()) {
    jit::internal::TraceBinary(kind, ToTraceBroadcast(mode), a, b, result);
  }
  return result;
}

// Shared implementation for elementwise unary ops. The forward formula and
// local derivative both come from the ewise table (the single source shared
// with the JIT's fused kernels); `param` feeds the parameterised kinds.
Tensor ElementwiseUnary(const Tensor& x, ewise::UnaryKind kind,
                        float param = 0.0f) {
  LOGCL_CHECK(x.defined());
  int64_t n = x.num_elements();
  const float* xv = x.data().data();
  std::vector<float> out = UninitOut(n);
  float* od = out.data();
  ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
    ewise::UnaryForwardKernel(kind, xv + i0, od + i0, i1 - i0, param);
  });
  Tensor result = Tensor::MakeOpOutput(
      x.shape(), std::move(out), {x}, [n, kind, param](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        bool fresh = false;
        float* gx = px->GradForFullWrite(&fresh);
        const float* g = node.grad.data();
        const float* xd = px->data.data();
        const float* yd = node.data.data();
        ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
          ewise::UnaryBackwardKernel(kind, g + i0, xd + i0, yd + i0, gx + i0,
                                     i1 - i0, param, fresh);
        });
      });
  if (jit::internal::Tracing()) {
    jit::internal::TraceUnary(kind, param, x, result);
  }
  return result;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x + y; },
      [](float g, float, float, float* da, float* db) {
        *da = g;
        *db = g;
      },
      BinOpKind::kAdd);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x - y; },
      [](float g, float, float, float* da, float* db) {
        *da = g;
        *db = -g;
      },
      BinOpKind::kSub);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x * y; },
      [](float g, float x, float y, float* da, float* db) {
        *da = g * y;
        *db = g * x;
      },
      BinOpKind::kMul);
}

Tensor MulColBroadcast(const Tensor& x, const Tensor& col) {
  LOGCL_CHECK(x.defined());
  LOGCL_CHECK(col.defined());
  LOGCL_CHECK_EQ(x.shape().rank(), 2);
  int64_t rows = x.shape().rows();
  int64_t cols = x.shape().cols();
  LOGCL_CHECK_EQ(col.num_elements(), rows);
  const float* xd = x.data().data();
  const float* cd = col.data().data();
  std::vector<float> out = UninitOut(rows * cols);
  float* od = out.data();
  ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float c = cd[i];
      for (int64_t j = 0; j < cols; ++j) od[i * cols + j] = xd[i * cols + j] * c;
    }
  });
  return Tensor::MakeOpOutput(
      x.shape(), std::move(out), {x, col}, [rows, cols](Node& node) {
        const auto& px = node.parents[0];
        const auto& pc = node.parents[1];
        const float* g = node.grad.data();
        const float* xd = px->data.data();
        const float* cd = pc->data.data();
        float* gx = nullptr;
        float* gc = nullptr;
        if (px->requires_grad) {
          px->EnsureGrad();
          gx = px->grad.data();
        }
        if (pc->requires_grad) {
          pc->EnsureGrad();
          gc = pc->grad.data();
        }
        ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            if (gx != nullptr) {
              float c = cd[i];
              for (int64_t j = 0; j < cols; ++j) {
                gx[i * cols + j] += g[i * cols + j] * c;
              }
            }
            if (gc != nullptr) {
              float sum = 0.0f;
              for (int64_t j = 0; j < cols; ++j) {
                sum += g[i * cols + j] * xd[i * cols + j];
              }
              gc[i] += sum;
            }
          }
        });
      });
}

Tensor Neg(const Tensor& a) {
  return ElementwiseUnary(a, ewise::UnaryKind::kNeg);
}

Tensor Scale(const Tensor& a, float s) {
  LOGCL_CHECK(a.defined());
  int64_t n = a.num_elements();
  const float* av = a.data().data();
  std::vector<float> out = UninitOut(n);
  float* od = out.data();
  ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
    simd::Scale(av + i0, s, od + i0, i1 - i0);
  });
  Tensor result = Tensor::MakeOpOutput(
      a.shape(), std::move(out), {a}, [n, s](Node& node) {
        const auto& pa = node.parents[0];
        if (!pa->requires_grad) return;
        bool fresh = false;
        float* ga = pa->GradForFullWrite(&fresh);
        const float* g = node.grad.data();
        ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
          (fresh ? simd::AxpyFresh : simd::Axpy)(s, g + i0, ga + i0, i1 - i0);
        });
      });
  if (jit::internal::Tracing()) jit::internal::TraceScale(a, s, result);
  return result;
}

Tensor AddScalar(const Tensor& a, float s) {
  LOGCL_CHECK(a.defined());
  int64_t n = a.num_elements();
  const float* av = a.data().data();
  std::vector<float> out = UninitOut(n);
  float* od = out.data();
  ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
    simd::AddScalar(av + i0, s, od + i0, i1 - i0);
  });
  Tensor result = Tensor::MakeOpOutput(
      a.shape(), std::move(out), {a}, [n](Node& node) {
        const auto& pa = node.parents[0];
        if (!pa->requires_grad) return;
        bool fresh = false;
        float* ga = pa->GradForFullWrite(&fresh);
        const float* g = node.grad.data();
        ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
          (fresh ? simd::AccumulateFresh : simd::Accumulate)(g + i0, ga + i0,
                                                             i1 - i0);
        });
      });
  if (jit::internal::Tracing()) jit::internal::TraceAddScalar(a, s, result);
  return result;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  LOGCL_TRACE_SCOPE("matmul");
  LOGCL_CHECK(a.defined());
  LOGCL_CHECK(b.defined());
  LOGCL_CHECK_EQ(a.shape().rank(), 2);
  LOGCL_CHECK_EQ(b.shape().rank(), 2);
  int64_t m = a.shape().rows();
  int64_t k = a.shape().cols();
  int64_t n = b.shape().cols();
  LOGCL_CHECK_EQ(k, b.shape().rows())
      << "MatMul shape mismatch: " << a.shape().ToString() << " x "
      << b.shape().ToString();
  std::vector<float> out = ZeroOut(m * n);
  MatMulAccumNN(a.data().data(), b.data().data(), out.data(), m, k, n);
  return Tensor::MakeOpOutput(
      Shape{m, n}, std::move(out), {a, b}, [m, k, n](Node& node) {
        const auto& pa = node.parents[0];
        const auto& pb = node.parents[1];
        const float* g = node.grad.data();
        if (pa->requires_grad) {
          pa->EnsureGrad();
          // gA(m x k) += G(m x n) * B(k x n)^T
          MatMulAccumNT(g, pb->data.data(), pa->grad.data(), m, n, k);
        }
        if (pb->requires_grad) {
          pb->EnsureGrad();
          // gB(k x n) += A(m x k)^T * G(m x n)
          MatMulAccumTN(pa->data.data(), g, pb->grad.data(), m, k, n);
        }
      });
}

Tensor Transpose(const Tensor& a) {
  LOGCL_CHECK(a.defined());
  LOGCL_CHECK_EQ(a.shape().rank(), 2);
  int64_t rows = a.shape().rows();
  int64_t cols = a.shape().cols();
  const float* ad = a.data().data();
  std::vector<float> out = UninitOut(rows * cols);
  float* od = out.data();
  ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      for (int64_t j = 0; j < cols; ++j) od[j * rows + i] = ad[i * cols + j];
    }
  });
  return Tensor::MakeOpOutput(
      Shape{cols, rows}, std::move(out), {a}, [rows, cols](Node& node) {
        const auto& pa = node.parents[0];
        if (!pa->requires_grad) return;
        bool fresh = false;
        float* ga = pa->GradForFullWrite(&fresh);
        const float* g = node.grad.data();
        ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
          if (fresh) {
            for (int64_t i = r0; i < r1; ++i) {
              for (int64_t j = 0; j < cols; ++j) {
                ga[i * cols + j] = 0.0f + g[j * rows + i];
              }
            }
          } else {
            for (int64_t i = r0; i < r1; ++i) {
              for (int64_t j = 0; j < cols; ++j) {
                ga[i * cols + j] += g[j * rows + i];
              }
            }
          }
        });
      });
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  LOGCL_CHECK(a.defined());
  LOGCL_CHECK_EQ(a.num_elements(), shape.num_elements());
  int64_t n = a.num_elements();
  std::vector<float> out = UninitOut(n);
  std::copy(a.data().begin(), a.data().end(), out.begin());
  return Tensor::MakeOpOutput(shape, std::move(out), {a}, [n](Node& node) {
    const auto& pa = node.parents[0];
    if (!pa->requires_grad) return;
    bool fresh = false;
    float* ga = pa->GradForFullWrite(&fresh);
    const float* g = node.grad.data();
    ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
      (fresh ? simd::AccumulateFresh : simd::Accumulate)(g + i0, ga + i0,
                                                         i1 - i0);
    });
  });
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  LOGCL_CHECK(!parts.empty());
  int64_t rows = parts[0].shape().rows();
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    LOGCL_CHECK_EQ(p.shape().rank(), 2);
    LOGCL_CHECK_EQ(p.shape().rows(), rows);
    total_cols += p.shape().cols();
  }
  std::vector<int64_t> offsets;
  offsets.reserve(parts.size());
  {
    int64_t offset = 0;
    for (const Tensor& p : parts) {
      offsets.push_back(offset);
      offset += p.shape().cols();
    }
  }
  std::vector<float> out = UninitOut(rows * total_cols);
  float* od = out.data();
  ParallelFor(0, rows, RowGrain(total_cols), [&](int64_t r0, int64_t r1) {
    for (size_t p = 0; p < parts.size(); ++p) {
      int64_t pc = parts[p].shape().cols();
      const float* pd = parts[p].data().data();
      for (int64_t i = r0; i < r1; ++i) {
        std::copy(pd + i * pc, pd + (i + 1) * pc,
                  od + i * total_cols + offsets[p]);
      }
    }
  });
  return Tensor::MakeOpOutput(
      Shape{rows, total_cols}, std::move(out), parts,
      [rows, total_cols, offsets](Node& node) {
        const float* g = node.grad.data();
        for (size_t p = 0; p < node.parents.size(); ++p) {
          const auto& parent = node.parents[p];
          if (!parent->requires_grad) continue;
          // A parent repeated in `parts` is fresh on its first slice only.
          bool fresh = false;
          float* gp = parent->GradForFullWrite(&fresh);
          int64_t pc = parent->shape.cols();
          int64_t off = offsets[p];
          ParallelFor(0, rows, RowGrain(pc), [&](int64_t r0, int64_t r1) {
            for (int64_t i = r0; i < r1; ++i) {
              const float* grow = g + i * total_cols + off;
              float* prow = gp + i * pc;
              if (fresh) {
                for (int64_t j = 0; j < pc; ++j) prow[j] = 0.0f + grow[j];
              } else {
                for (int64_t j = 0; j < pc; ++j) prow[j] += grow[j];
              }
            }
          });
        }
      });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  LOGCL_CHECK(!parts.empty());
  int64_t cols = parts[0].shape().cols();
  int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    LOGCL_CHECK_EQ(p.shape().rank(), 2);
    LOGCL_CHECK_EQ(p.shape().cols(), cols);
    total_rows += p.shape().rows();
  }
  std::vector<float> out = UninitOut(total_rows * cols);
  std::vector<int64_t> row_offsets;
  row_offsets.reserve(parts.size());
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    row_offsets.push_back(offset);
    std::copy(p.data().begin(), p.data().end(),
              out.begin() + static_cast<size_t>(offset * cols));
    offset += p.shape().rows();
  }
  return Tensor::MakeOpOutput(
      Shape{total_rows, cols}, std::move(out), parts,
      [cols, row_offsets](Node& node) {
        const float* g = node.grad.data();
        for (size_t p = 0; p < node.parents.size(); ++p) {
          const auto& parent = node.parents[p];
          if (!parent->requires_grad) continue;
          // A parent repeated in `parts` is fresh on its first slice only.
          bool fresh = false;
          float* gp = parent->GradForFullWrite(&fresh);
          int64_t pr = parent->shape.rows();
          const float* gstart = g + row_offsets[p] * cols;
          ParallelFor(0, pr * cols, kGrain, [&](int64_t i0, int64_t i1) {
            (fresh ? simd::AccumulateFresh : simd::Accumulate)(
                gstart + i0, gp + i0, i1 - i0);
          });
        }
      });
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t count) {
  LOGCL_CHECK(a.defined());
  LOGCL_CHECK_EQ(a.shape().rank(), 2);
  int64_t rows = a.shape().rows();
  int64_t cols = a.shape().cols();
  LOGCL_CHECK_GE(start, 0);
  LOGCL_CHECK_GE(count, 0);
  LOGCL_CHECK_LE(start + count, cols);
  const float* ad = a.data().data();
  std::vector<float> out = UninitOut(rows * count);
  float* od = out.data();
  ParallelFor(0, rows, RowGrain(count), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      std::copy(ad + i * cols + start, ad + i * cols + start + count,
                od + i * count);
    }
  });
  return Tensor::MakeOpOutput(
      Shape{rows, count}, std::move(out), {a},
      [rows, cols, start, count](Node& node) {
        const auto& pa = node.parents[0];
        if (!pa->requires_grad) return;
        pa->EnsureGrad();
        const float* g = node.grad.data();
        float* ga = pa->grad.data();
        ParallelFor(0, rows, RowGrain(count), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            for (int64_t j = 0; j < count; ++j) {
              ga[i * cols + start + j] += g[i * count + j];
            }
          }
        });
      });
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t count) {
  LOGCL_CHECK(a.defined());
  LOGCL_CHECK_EQ(a.shape().rank(), 2);
  int64_t rows = a.shape().rows();
  int64_t cols = a.shape().cols();
  LOGCL_CHECK_GE(start, 0);
  LOGCL_CHECK_GE(count, 0);
  LOGCL_CHECK_LE(start + count, rows);
  const float* ad = a.data().data();
  std::vector<float> out = UninitOut(count * cols);
  std::copy(ad + start * cols, ad + (start + count) * cols, out.begin());
  return Tensor::MakeOpOutput(
      Shape{count, cols}, std::move(out), {a},
      [cols, start, count](Node& node) {
        const auto& pa = node.parents[0];
        if (!pa->requires_grad) return;
        pa->EnsureGrad();
        const float* g = node.grad.data();
        float* ga = pa->grad.data() + start * cols;
        ParallelFor(0, count * cols, kGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) ga[i] += g[i];
        });
      });
}

Tensor IndexSelectRows(const Tensor& x, const std::vector<int64_t>& indices) {
  LOGCL_CHECK(x.defined());
  LOGCL_CHECK_EQ(x.shape().rank(), 2);
  int64_t rows = x.shape().rows();
  int64_t cols = x.shape().cols();
  int64_t n = static_cast<int64_t>(indices.size());
  const float* xd = x.data().data();
  for (int64_t i = 0; i < n; ++i) {
    LOGCL_CHECK_GE(indices[static_cast<size_t>(i)], 0);
    LOGCL_CHECK_LT(indices[static_cast<size_t>(i)], rows);
  }
  std::vector<float> out = UninitOut(n * cols);
  float* od = out.data();
  ParallelFor(0, n, RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      int64_t src = indices[static_cast<size_t>(i)];
      std::copy(xd + src * cols, xd + (src + 1) * cols, od + i * cols);
    }
  });
  return Tensor::MakeOpOutput(
      Shape{n, cols}, std::move(out), {x},
      [rows, cols, n, indices](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        px->EnsureGrad();
        const float* g = node.grad.data();
        float* gx = px->grad.data();
        // Destination-sharded: each shard owns a contiguous range of gx
        // rows and scans every index, so repeated indices accumulate in
        // the same (serial) order at any thread count.
        ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t i = 0; i < n; ++i) {
            int64_t dst = indices[static_cast<size_t>(i)];
            if (dst < r0 || dst >= r1) continue;
            const float* grow = g + i * cols;
            float* xrow = gx + dst * cols;
            for (int64_t j = 0; j < cols; ++j) xrow[j] += grow[j];
          }
        });
      });
}

Tensor ScatterAddRows(const Tensor& values, const std::vector<int64_t>& indices,
                      int64_t num_rows) {
  LOGCL_CHECK(values.defined());
  LOGCL_CHECK_EQ(values.shape().rank(), 2);
  int64_t n = values.shape().rows();
  int64_t cols = values.shape().cols();
  LOGCL_CHECK_EQ(n, static_cast<int64_t>(indices.size()));
  for (int64_t i = 0; i < n; ++i) {
    LOGCL_CHECK_GE(indices[static_cast<size_t>(i)], 0);
    LOGCL_CHECK_LT(indices[static_cast<size_t>(i)], num_rows);
  }
  const float* vd = values.data().data();
  std::vector<float> out = ZeroOut(num_rows * cols);
  float* od = out.data();
  // Destination-sharded accumulation (see IndexSelectRows backward).
  ParallelFor(0, num_rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = 0; i < n; ++i) {
      int64_t dst = indices[static_cast<size_t>(i)];
      if (dst < r0 || dst >= r1) continue;
      const float* vrow = vd + i * cols;
      float* orow = od + dst * cols;
      for (int64_t j = 0; j < cols; ++j) orow[j] += vrow[j];
    }
  });
  return Tensor::MakeOpOutput(
      Shape{num_rows, cols}, std::move(out), {values},
      [cols, n, indices](Node& node) {
        const auto& pv = node.parents[0];
        if (!pv->requires_grad) return;
        pv->EnsureGrad();
        const float* g = node.grad.data();
        float* gv = pv->grad.data();
        // Edge-parallel: every value row has a distinct gradient row.
        ParallelFor(0, n, RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            int64_t src = indices[static_cast<size_t>(i)];
            const float* grow = g + src * cols;
            float* vrow = gv + i * cols;
            for (int64_t j = 0; j < cols; ++j) vrow[j] += grow[j];
          }
        });
      });
}

Tensor ScatterMeanRows(const Tensor& values,
                       const std::vector<int64_t>& indices, int64_t num_rows) {
  LOGCL_CHECK(values.defined());
  LOGCL_CHECK_EQ(values.shape().rank(), 2);
  int64_t n = values.shape().rows();
  int64_t cols = values.shape().cols();
  LOGCL_CHECK_EQ(n, static_cast<int64_t>(indices.size()));
  std::vector<float> inv_count(static_cast<size_t>(num_rows), 0.0f);
  for (int64_t i = 0; i < n; ++i) {
    int64_t dst = indices[static_cast<size_t>(i)];
    LOGCL_CHECK_GE(dst, 0);
    LOGCL_CHECK_LT(dst, num_rows);
    inv_count[static_cast<size_t>(dst)] += 1.0f;
  }
  for (float& c : inv_count) c = c > 0.0f ? 1.0f / c : 0.0f;
  const float* vd = values.data().data();
  std::vector<float> out = ZeroOut(num_rows * cols);
  float* od = out.data();
  ParallelFor(0, num_rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = 0; i < n; ++i) {
      int64_t dst = indices[static_cast<size_t>(i)];
      if (dst < r0 || dst >= r1) continue;
      float w = inv_count[static_cast<size_t>(dst)];
      const float* vrow = vd + i * cols;
      float* orow = od + dst * cols;
      for (int64_t j = 0; j < cols; ++j) orow[j] += w * vrow[j];
    }
  });
  return Tensor::MakeOpOutput(
      Shape{num_rows, cols}, std::move(out), {values},
      [cols, n, indices, inv_count](Node& node) {
        const auto& pv = node.parents[0];
        if (!pv->requires_grad) return;
        pv->EnsureGrad();
        const float* g = node.grad.data();
        float* gv = pv->grad.data();
        ParallelFor(0, n, RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            int64_t src = indices[static_cast<size_t>(i)];
            float w = inv_count[static_cast<size_t>(src)];
            const float* grow = g + src * cols;
            float* vrow = gv + i * cols;
            for (int64_t j = 0; j < cols; ++j) vrow[j] += w * grow[j];
          }
        });
      });
}

namespace {

// Grain for loops sharded over softmax segments: aim for ~2048 edges of
// work per shard, assuming edges are evenly spread over segments.
int64_t SegmentGrain(int64_t num_segments, int64_t num_edges) {
  return std::max<int64_t>(
      1, num_segments * 2048 / std::max<int64_t>(1, num_edges));
}

}  // namespace

Tensor SegmentSoftmax(const Tensor& logits,
                      const std::vector<int64_t>& segment_ids,
                      int64_t num_segments) {
  LOGCL_CHECK(logits.defined());
  int64_t n = logits.num_elements();
  LOGCL_CHECK_EQ(n, static_cast<int64_t>(segment_ids.size()));
  const float* ld = logits.data().data();
  for (int64_t i = 0; i < n; ++i) {
    LOGCL_CHECK_GE(segment_ids[static_cast<size_t>(i)], 0);
    LOGCL_CHECK_LT(segment_ids[static_cast<size_t>(i)], num_segments);
  }
  // Numerically stable per-segment softmax: subtract segment max. The
  // max/sum passes are segment-sharded (each shard owns a contiguous
  // segment range and scans all edges), the normalisation is edge-parallel.
  std::vector<float> seg_max(static_cast<size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  std::vector<float> out = UninitOut(n);
  std::vector<float> seg_sum(static_cast<size_t>(num_segments), 0.0f);
  int64_t seg_grain = SegmentGrain(num_segments, n);
  ParallelFor(0, num_segments, seg_grain, [&](int64_t s0, int64_t s1) {
    for (int64_t i = 0; i < n; ++i) {
      int64_t s = segment_ids[static_cast<size_t>(i)];
      if (s < s0 || s >= s1) continue;
      seg_max[static_cast<size_t>(s)] =
          std::max(seg_max[static_cast<size_t>(s)], ld[i]);
    }
  });
  float* od = out.data();
  ParallelFor(0, num_segments, seg_grain, [&](int64_t s0, int64_t s1) {
    for (int64_t i = 0; i < n; ++i) {
      int64_t s = segment_ids[static_cast<size_t>(i)];
      if (s < s0 || s >= s1) continue;
      float e = std::exp(ld[i] - seg_max[static_cast<size_t>(s)]);
      od[i] = e;
      seg_sum[static_cast<size_t>(s)] += e;
    }
  });
  ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      od[i] /= seg_sum[static_cast<size_t>(segment_ids[static_cast<size_t>(i)])];
    }
  });
  return Tensor::MakeOpOutput(
      Shape{n, 1}, std::move(out), {logits},
      [n, segment_ids, num_segments](Node& node) {
        const auto& pl = node.parents[0];
        if (!pl->requires_grad) return;
        pl->EnsureGrad();
        const float* g = node.grad.data();
        const float* y = node.data.data();
        float* gl = pl->grad.data();
        // gx_i = y_i * (g_i - sum_{j in seg} y_j g_j)
        std::vector<float> seg_dot(static_cast<size_t>(num_segments), 0.0f);
        ParallelFor(0, num_segments, SegmentGrain(num_segments, n),
                    [&](int64_t s0, int64_t s1) {
                      for (int64_t i = 0; i < n; ++i) {
                        int64_t s = segment_ids[static_cast<size_t>(i)];
                        if (s < s0 || s >= s1) continue;
                        seg_dot[static_cast<size_t>(s)] += y[i] * g[i];
                      }
                    });
        ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            float dot = seg_dot[static_cast<size_t>(
                segment_ids[static_cast<size_t>(i)])];
            gl[i] += y[i] * (g[i] - dot);
          }
        });
      });
}

// ---------------------------------------------------------------------------
// CSR scatter variants + fused relational message passing.
//
// Parity contract: every kernel below reproduces the composed reference ops
// bit for bit. Per destination row, the CSR lists edges in ascending edge id
// (counting sort), so row-local accumulation in CSR order equals the
// composed ops' serial edge scan; per-edge matmuls sweep the reduction
// dimension ascending with a single accumulator per output element, exactly
// like the blocked MatMulAccum kernels. Parallelism is over destination-row
// (or edge-tile) shards only, so results are thread-count invariant.
// ---------------------------------------------------------------------------

namespace {

// Edges per register tile in the fused kernels: 8 message rows stream
// through one read of each weight column block.
constexpr int64_t kEdgeTile = 8;

inline float ComposeValue(EdgeCompose compose, float a, float b) {
  switch (compose) {
    case EdgeCompose::kAdd:
      return a + b;
    case EdgeCompose::kSubtract:
      return a - b;
    case EdgeCompose::kMultiply:
      return a * b;
  }
  return 0.0f;
}

// Fills out[e - e0, :] = compose(nodes[src[e], :], rels[rel[e], :]) for
// e in [e0, e1). Matches the composed gather + elementwise ops bitwise
// (one arithmetic op per element).
// Row-sized SIMD compose (one arithmetic op per element, same rounding as
// ComposeValue).
inline void ComposeRow(EdgeCompose compose, const float* nrow,
                       const float* rrow, float* orow, int64_t d_in) {
  switch (compose) {
    case EdgeCompose::kAdd:
      simd::Add(nrow, rrow, orow, d_in);
      break;
    case EdgeCompose::kSubtract:
      simd::Sub(nrow, rrow, orow, d_in);
      break;
    case EdgeCompose::kMultiply:
      simd::Mul(nrow, rrow, orow, d_in);
      break;
  }
}

void ComposeRows(const float* nodes, const float* rels,
                 const std::vector<int64_t>& src,
                 const std::vector<int64_t>& rel, EdgeCompose compose,
                 int64_t d_in, int64_t e0, int64_t e1, float* out) {
  for (int64_t e = e0; e < e1; ++e) {
    const float* nrow = nodes + src[static_cast<size_t>(e)] * d_in;
    const float* rrow = rels + rel[static_cast<size_t>(e)] * d_in;
    ComposeRow(compose, nrow, rrow, out + (e - e0) * d_in, d_in);
  }
}

void CheckEdgeIndices(const std::vector<int64_t>& indices, int64_t limit) {
  for (int64_t i : indices) {
    LOGCL_CHECK_GE(i, 0);
    LOGCL_CHECK_LT(i, limit);
  }
}

// WT[j, i] = W[i, j], written into pooled scratch. Lets the fused backward
// compute gA = G * W^T through the NN kernel's streaming loop instead of the
// NT kernel's dot products (~5x faster at d=200): per output element both
// kernels accumulate the identical products in ascending reduction order
// into one zero-initialized accumulator, so the results are bitwise equal.
void TransposeInto(const float* w, int64_t rows, int64_t cols, float* wt) {
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) wt[j * rows + i] = w[i * cols + j];
  }
}

// gW(d_in x d_out) += compose(A)^T * G without materializing the [E, d_in]
// composed-input matrix: edge blocks are re-composed into an L1 strip and
// rank-updated into a per-shard scratch that sweeps all edges before
// touching gW once. Per output element this is the same single
// ascending-edge accumulation chain as MatMulAccumTN on the materialized
// matrix (zero-initialized accumulator, one final += into the grad), so the
// result is bitwise identical while reading far less memory per block.
// Shards split the d_in rows; every shard streams all edges, so the per-
// element order is thread-count invariant.
void AccumulateWeightGrad(const float* nodes, const float* rels,
                          const std::vector<int64_t>& src,
                          const std::vector<int64_t>& rel,
                          EdgeCompose compose, const float* g,
                          int64_t num_edges, int64_t d_in, int64_t d_out,
                          float* gw) {
  ParallelFor(0, d_in, 1, [&](int64_t l0, int64_t l1) {
    // Pooled scratch: worker threads recycle these through their own
    // thread-local cache, so the per-shard allocations vanish in steady
    // state. ablock rows past `en` are never read, hence kUninit.
    PooledBuffer scratch(static_cast<size_t>((l1 - l0) * d_out),
                         BufferFill::kZero);
    PooledBuffer ablock(static_cast<size_t>(kEdgeTile * d_in),
                        BufferFill::kUninit);
    for (int64_t e0 = 0; e0 < num_edges; e0 += kEdgeTile) {
      const int64_t en = std::min<int64_t>(kEdgeTile, num_edges - e0);
      ComposeRows(nodes, rels, src, rel, compose, d_in, e0, e0 + en,
                  ablock.data());
      for (int64_t l = l0; l < l1; ++l) {
        float* srow = scratch.data() + (l - l0) * d_out;
        for (int64_t r = 0; r < en; ++r) {
          float av = ablock[static_cast<size_t>(r * d_in + l)];
          simd::Axpy(av, g + (e0 + r) * d_out, srow, d_out);
        }
      }
    }
    for (int64_t l = l0; l < l1; ++l) {
      simd::Accumulate(scratch.data() + (l - l0) * d_out, gw + l * d_out,
                       d_out);
    }
  });
}

// Scatters gA (the gradient w.r.t. the composed [E, d_in] input rows) into
// the node/relation gradients, destination-sharded like the composed
// IndexSelectRows backward. `other` is the co-factor matrix for kMultiply
// (relations when accumulating node grads and vice versa), indexed by
// `other_index`.
void ScatterComposeGrad(const float* ga, const std::vector<int64_t>& index,
                        const std::vector<int64_t>& other_index,
                        const float* other, bool negate, EdgeCompose compose,
                        int64_t d_in, int64_t num_rows, float* grad) {
  int64_t num_edges = static_cast<int64_t>(index.size());
  ParallelFor(0, num_rows, RowGrain(d_in), [&](int64_t r0, int64_t r1) {
    for (int64_t e = 0; e < num_edges; ++e) {
      int64_t dst = index[static_cast<size_t>(e)];
      if (dst < r0 || dst >= r1) continue;
      const float* garow = ga + e * d_in;
      float* grow = grad + dst * d_in;
      if (compose == EdgeCompose::kMultiply) {
        const float* orow =
            other + other_index[static_cast<size_t>(e)] * d_in;
        for (int64_t l = 0; l < d_in; ++l) {
          // Two statements, matching the composed Mul backward's rounding
          // (product first, then accumulate).
          float da = garow[l] * orow[l];
          grow[l] += da;
        }
      } else if (negate) {
        for (int64_t l = 0; l < d_in; ++l) grow[l] += -garow[l];
      } else {
        for (int64_t l = 0; l < d_in; ++l) grow[l] += garow[l];
      }
    }
  });
}

bool& FusedMessagePassingFlag() {
  static bool flag = RuntimeConfig::Get().fused_mp;
  return flag;
}

}  // namespace

bool FusedMessagePassingEnabled() { return FusedMessagePassingFlag(); }

void SetFusedMessagePassingEnabled(bool enabled) {
  FusedMessagePassingFlag() = enabled;
}

Tensor ScatterAddRows(const Tensor& values, const EdgeCsrPtr& csr) {
  LOGCL_CHECK(values.defined());
  LOGCL_CHECK(csr != nullptr);
  LOGCL_CHECK_EQ(values.shape().rank(), 2);
  int64_t cols = values.shape().cols();
  LOGCL_CHECK_EQ(values.shape().rows(), csr->num_edges);
  int64_t num_rows = csr->num_rows;
  const float* vd = values.data().data();
  std::vector<float> out = ZeroOut(num_rows * cols);
  float* od = out.data();
  ParallelFor(0, num_rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float* orow = od + r * cols;
      for (int64_t p = csr->offsets[static_cast<size_t>(r)];
           p < csr->offsets[static_cast<size_t>(r) + 1]; ++p) {
        const float* vrow =
            vd + csr->edge_order[static_cast<size_t>(p)] * cols;
        for (int64_t j = 0; j < cols; ++j) orow[j] += vrow[j];
      }
    }
  });
  return Tensor::MakeOpOutput(
      Shape{num_rows, cols}, std::move(out), {values},
      [cols, csr](Node& node) {
        const auto& pv = node.parents[0];
        if (!pv->requires_grad) return;
        pv->EnsureGrad();
        const float* g = node.grad.data();
        float* gv = pv->grad.data();
        // Each edge appears in exactly one CSR row: edge-parallel in effect.
        ParallelFor(0, csr->num_rows, RowGrain(cols),
                    [&](int64_t r0, int64_t r1) {
                      for (int64_t r = r0; r < r1; ++r) {
                        const float* grow = g + r * cols;
                        for (int64_t p = csr->offsets[static_cast<size_t>(r)];
                             p < csr->offsets[static_cast<size_t>(r) + 1];
                             ++p) {
                          float* vrow =
                              gv +
                              csr->edge_order[static_cast<size_t>(p)] * cols;
                          for (int64_t j = 0; j < cols; ++j) {
                            vrow[j] += grow[j];
                          }
                        }
                      }
                    });
      });
}

Tensor ScatterMeanRows(const Tensor& values, const EdgeCsrPtr& csr) {
  LOGCL_CHECK(values.defined());
  LOGCL_CHECK(csr != nullptr);
  LOGCL_CHECK_EQ(values.shape().rank(), 2);
  int64_t cols = values.shape().cols();
  LOGCL_CHECK_EQ(values.shape().rows(), csr->num_edges);
  int64_t num_rows = csr->num_rows;
  const float* vd = values.data().data();
  std::vector<float> out = ZeroOut(num_rows * cols);
  float* od = out.data();
  ParallelFor(0, num_rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float w = csr->inv_in_degree[static_cast<size_t>(r)];
      float* orow = od + r * cols;
      for (int64_t p = csr->offsets[static_cast<size_t>(r)];
           p < csr->offsets[static_cast<size_t>(r) + 1]; ++p) {
        const float* vrow =
            vd + csr->edge_order[static_cast<size_t>(p)] * cols;
        for (int64_t j = 0; j < cols; ++j) orow[j] += w * vrow[j];
      }
    }
  });
  return Tensor::MakeOpOutput(
      Shape{num_rows, cols}, std::move(out), {values},
      [cols, csr](Node& node) {
        const auto& pv = node.parents[0];
        if (!pv->requires_grad) return;
        pv->EnsureGrad();
        const float* g = node.grad.data();
        float* gv = pv->grad.data();
        ParallelFor(0, csr->num_rows, RowGrain(cols),
                    [&](int64_t r0, int64_t r1) {
                      for (int64_t r = r0; r < r1; ++r) {
                        float w =
                            csr->inv_in_degree[static_cast<size_t>(r)];
                        const float* grow = g + r * cols;
                        for (int64_t p = csr->offsets[static_cast<size_t>(r)];
                             p < csr->offsets[static_cast<size_t>(r) + 1];
                             ++p) {
                          float* vrow =
                              gv +
                              csr->edge_order[static_cast<size_t>(p)] * cols;
                          for (int64_t j = 0; j < cols; ++j) {
                            vrow[j] += w * grow[j];
                          }
                        }
                      }
                    });
      });
}

Tensor SegmentSoftmax(const Tensor& logits, const EdgeCsrPtr& csr) {
  LOGCL_CHECK(logits.defined());
  LOGCL_CHECK(csr != nullptr);
  int64_t n = logits.num_elements();
  LOGCL_CHECK_EQ(n, csr->num_edges);
  int64_t num_segments = csr->num_rows;
  const float* ld = logits.data().data();
  // Same max/exp-sum/normalize structure as the index-vector overload, but
  // each segment walks only its own edges (ascending edge id: identical
  // accumulation order to the full-edge scan).
  std::vector<float> out = UninitOut(n);
  float* od = out.data();
  int64_t seg_grain = SegmentGrain(num_segments, n);
  ParallelFor(0, num_segments, seg_grain, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      float seg_max = -std::numeric_limits<float>::infinity();
      for (int64_t p = csr->offsets[static_cast<size_t>(s)];
           p < csr->offsets[static_cast<size_t>(s) + 1]; ++p) {
        seg_max =
            std::max(seg_max, ld[csr->edge_order[static_cast<size_t>(p)]]);
      }
      float seg_sum = 0.0f;
      for (int64_t p = csr->offsets[static_cast<size_t>(s)];
           p < csr->offsets[static_cast<size_t>(s) + 1]; ++p) {
        int64_t e = csr->edge_order[static_cast<size_t>(p)];
        float ev = std::exp(ld[e] - seg_max);
        od[e] = ev;
        seg_sum += ev;
      }
      for (int64_t p = csr->offsets[static_cast<size_t>(s)];
           p < csr->offsets[static_cast<size_t>(s) + 1]; ++p) {
        od[csr->edge_order[static_cast<size_t>(p)]] /= seg_sum;
      }
    }
  });
  return Tensor::MakeOpOutput(
      Shape{n, 1}, std::move(out), {logits}, [n, csr](Node& node) {
        const auto& pl = node.parents[0];
        if (!pl->requires_grad) return;
        pl->EnsureGrad();
        const float* g = node.grad.data();
        const float* y = node.data.data();
        float* gl = pl->grad.data();
        // gx_i = y_i * (g_i - sum_{j in seg} y_j g_j)
        ParallelFor(0, csr->num_rows, SegmentGrain(csr->num_rows, n),
                    [&](int64_t s0, int64_t s1) {
                      for (int64_t s = s0; s < s1; ++s) {
                        float dot = 0.0f;
                        for (int64_t p =
                                 csr->offsets[static_cast<size_t>(s)];
                             p < csr->offsets[static_cast<size_t>(s) + 1];
                             ++p) {
                          int64_t e =
                              csr->edge_order[static_cast<size_t>(p)];
                          dot += y[e] * g[e];
                        }
                        for (int64_t p =
                                 csr->offsets[static_cast<size_t>(s)];
                             p < csr->offsets[static_cast<size_t>(s) + 1];
                             ++p) {
                          int64_t e =
                              csr->edge_order[static_cast<size_t>(p)];
                          gl[e] += y[e] * (g[e] - dot);
                        }
                      }
                    });
      });
}

Tensor EdgeMessages(const Tensor& nodes, const Tensor& relations,
                    const Tensor& weight, const std::vector<int64_t>& src,
                    const std::vector<int64_t>& rel, EdgeCompose compose) {
  LOGCL_CHECK(nodes.defined());
  LOGCL_CHECK(relations.defined());
  LOGCL_CHECK(weight.defined());
  LOGCL_CHECK_EQ(nodes.shape().rank(), 2);
  LOGCL_CHECK_EQ(relations.shape().rank(), 2);
  LOGCL_CHECK_EQ(weight.shape().rank(), 2);
  int64_t d_in = nodes.shape().cols();
  LOGCL_CHECK_EQ(relations.shape().cols(), d_in);
  LOGCL_CHECK_EQ(weight.shape().rows(), d_in);
  int64_t d_out = weight.shape().cols();
  int64_t num_edges = static_cast<int64_t>(src.size());
  LOGCL_CHECK_EQ(num_edges, static_cast<int64_t>(rel.size()));
  CheckEdgeIndices(src, nodes.shape().rows());
  CheckEdgeIndices(rel, relations.shape().rows());
  int64_t num_nodes = nodes.shape().rows();
  int64_t num_rels = relations.shape().rows();

  const float* nd = nodes.data().data();
  const float* rd = relations.data().data();
  const float* wd = weight.data().data();
  std::vector<float> out = UninitOut(num_edges * d_out);
  float* od = out.data();
  // Edge-tile streaming: compose kEdgeTile input rows into a scratch strip,
  // multiply against one weight column block at a time with a register tile
  // (single accumulator per element sweeping d_in ascending, as in
  // MatMulAccumNN), and write the finished message rows.
  int64_t edge_grain = MatMulRowGrain(d_in * d_out);
  ParallelFor(0, num_edges, edge_grain, [&](int64_t e0, int64_t e1) {
    PooledBuffer a(static_cast<size_t>(kEdgeTile * d_in),
                   BufferFill::kUninit);
    float acc[kEdgeTile][kTileCols];
    for (int64_t t0 = e0; t0 < e1; t0 += kEdgeTile) {
      const int64_t tn = std::min<int64_t>(kEdgeTile, e1 - t0);
      ComposeRows(nd, rd, src, rel, compose, d_in, t0, t0 + tn, a.data());
      for (int64_t j0 = 0; j0 < d_out; j0 += kTileCols) {
        const int64_t jn = std::min(kTileCols, d_out - j0);
        simd::MatMulTile(a.data(), d_in, wd + j0, d_out, &acc[0][0],
                         kTileCols, tn, d_in, jn);
        for (int64_t r = 0; r < tn; ++r) {
          float* orow = od + (t0 + r) * d_out + j0;
          for (int64_t j = 0; j < jn; ++j) orow[j] = acc[r][j];
        }
      }
    }
  });
  return Tensor::MakeOpOutput(
      Shape{num_edges, d_out}, std::move(out), {nodes, relations, weight},
      [d_in, d_out, num_edges, num_nodes, num_rels, src, rel,
       compose](Node& node) {
        const auto& pn = node.parents[0];
        const auto& pr = node.parents[1];
        const auto& pw = node.parents[2];
        const float* g = node.grad.data();
        const float* nd = pn->data.data();
        const float* rd = pr->data.data();
        bool need_input_grads = pn->requires_grad || pr->requires_grad;
        // gA = G * W^T, computed as G * transpose(W) through the NN kernel
        // (bitwise equal to the composed MatMul backward's NT product).
        PooledBuffer ga;
        if (need_input_grads) {
          ga = PooledBuffer(static_cast<size_t>(num_edges * d_in),
                            BufferFill::kZero);
          PooledBuffer wt(static_cast<size_t>(d_in * d_out),
                          BufferFill::kUninit);
          TransposeInto(pw->data.data(), d_in, d_out, wt.data());
          MatMulAccumNN(g, wt.data(), ga.data(), num_edges, d_out, d_in);
        }
        if (pw->requires_grad) {
          pw->EnsureGrad();
          // Recomposes edge blocks on the fly instead of keeping an [E, d]
          // tensor alive on the tape (bitwise equal to the forward values).
          AccumulateWeightGrad(nd, rd, src, rel, compose, g, num_edges, d_in,
                               d_out, pw->grad.data());
        }
        if (pn->requires_grad) {
          pn->EnsureGrad();
          ScatterComposeGrad(ga.data(), src, rel, rd, /*negate=*/false,
                             compose, d_in, num_nodes, pn->grad.data());
        }
        if (pr->requires_grad) {
          pr->EnsureGrad();
          ScatterComposeGrad(ga.data(), rel, src, nd,
                             /*negate=*/compose == EdgeCompose::kSubtract,
                             compose, d_in, num_rels, pr->grad.data());
        }
      });
}

Tensor FusedRelMessagePassing(const Tensor& nodes, const Tensor& relations,
                              const Tensor& weight,
                              const std::vector<int64_t>& src,
                              const std::vector<int64_t>& rel,
                              const std::vector<int64_t>& dst,
                              const EdgeCsrPtr& dst_csr,
                              EdgeCompose compose) {
  LOGCL_TRACE_SCOPE("fused_mp");
  LOGCL_CHECK(nodes.defined());
  LOGCL_CHECK(relations.defined());
  LOGCL_CHECK(weight.defined());
  LOGCL_CHECK(dst_csr != nullptr);
  LOGCL_CHECK_EQ(nodes.shape().rank(), 2);
  LOGCL_CHECK_EQ(relations.shape().rank(), 2);
  LOGCL_CHECK_EQ(weight.shape().rank(), 2);
  int64_t d_in = nodes.shape().cols();
  LOGCL_CHECK_EQ(relations.shape().cols(), d_in);
  LOGCL_CHECK_EQ(weight.shape().rows(), d_in);
  int64_t d_out = weight.shape().cols();
  int64_t num_edges = static_cast<int64_t>(src.size());
  LOGCL_CHECK_EQ(num_edges, static_cast<int64_t>(rel.size()));
  LOGCL_CHECK_EQ(num_edges, static_cast<int64_t>(dst.size()));
  LOGCL_CHECK_EQ(num_edges, dst_csr->num_edges);
  int64_t num_rows = dst_csr->num_rows;
  CheckEdgeIndices(src, nodes.shape().rows());
  CheckEdgeIndices(rel, relations.shape().rows());
  int64_t num_nodes = nodes.shape().rows();
  int64_t num_rels = relations.shape().rows();

  const float* nd = nodes.data().data();
  const float* rd = relations.data().data();
  const float* wd = weight.data().data();
  const EdgeCsr& csr = *dst_csr;
  std::vector<float> out = ZeroOut(num_rows * d_out);
  float* od = out.data();
  // Shards own contiguous destination rows; a row's CSR edges are contiguous
  // and ascending, so streaming tiles of CSR positions keeps each output
  // element's accumulation order identical to the composed serial scan.
  ParallelFor(0, num_rows, RowGrain(d_out), [&](int64_t r0, int64_t r1) {
    const int64_t p_begin = csr.offsets[static_cast<size_t>(r0)];
    const int64_t p_end = csr.offsets[static_cast<size_t>(r1)];
    if (p_begin == p_end) return;
    PooledBuffer a(static_cast<size_t>(kEdgeTile * d_in),
                   BufferFill::kUninit);
    float acc[kEdgeTile][kTileCols];
    for (int64_t t0 = p_begin; t0 < p_end; t0 += kEdgeTile) {
      const int64_t tn = std::min<int64_t>(kEdgeTile, p_end - t0);
      // Compose the tile's input rows (CSR position order).
      for (int64_t r = 0; r < tn; ++r) {
        int64_t e = csr.edge_order[static_cast<size_t>(t0 + r)];
        const float* nrow = nd + src[static_cast<size_t>(e)] * d_in;
        const float* rrow = rd + rel[static_cast<size_t>(e)] * d_in;
        ComposeRow(compose, nrow, rrow, a.data() + r * d_in, d_in);
      }
      for (int64_t j0 = 0; j0 < d_out; j0 += kTileCols) {
        const int64_t jn = std::min(kTileCols, d_out - j0);
        simd::MatMulTile(a.data(), d_in, wd + j0, d_out, &acc[0][0],
                         kTileCols, tn, d_in, jn);
        // Mean-scatter the finished message tile, still in CSR order.
        for (int64_t r = 0; r < tn; ++r) {
          int64_t e = csr.edge_order[static_cast<size_t>(t0 + r)];
          int64_t drow = dst[static_cast<size_t>(e)];
          float w = csr.inv_in_degree[static_cast<size_t>(drow)];
          simd::Axpy(w, acc[r], od + drow * d_out + j0, jn);
        }
      }
    }
  });
  return Tensor::MakeOpOutput(
      Shape{num_rows, d_out}, std::move(out), {nodes, relations, weight},
      [d_in, d_out, num_edges, num_nodes, num_rels, src, rel, dst_csr,
       compose](Node& node) {
        const auto& pn = node.parents[0];
        const auto& pr = node.parents[1];
        const auto& pw = node.parents[2];
        const float* g = node.grad.data();
        const float* nd = pn->data.data();
        const float* rd = pr->data.data();
        const EdgeCsr& csr = *dst_csr;
        // gM[e] = inv_deg[dst[e]] * G[dst[e]] (ScatterMeanRows backward);
        // each edge is written once via its CSR row, so this is racefree
        // (and every edge IS written: kUninit is safe).
        PooledBuffer gm(static_cast<size_t>(num_edges * d_out),
                        BufferFill::kUninit);
        ParallelFor(0, csr.num_rows, RowGrain(d_out),
                    [&](int64_t r0, int64_t r1) {
                      for (int64_t r = r0; r < r1; ++r) {
                        float w = csr.inv_in_degree[static_cast<size_t>(r)];
                        const float* grow = g + r * d_out;
                        for (int64_t p = csr.offsets[static_cast<size_t>(r)];
                             p < csr.offsets[static_cast<size_t>(r) + 1];
                             ++p) {
                          simd::Scale(
                              grow, w,
                              gm.data() +
                                  csr.edge_order[static_cast<size_t>(p)] *
                                      d_out,
                              d_out);
                        }
                      }
                    });
        bool need_input_grads = pn->requires_grad || pr->requires_grad;
        // gA = gM * W^T via the NN kernel on a transposed W, and
        // gW += compose(A)^T * gM via the block-recomposing rank-update
        // kernel — both bitwise equal to the composed NT/TN products.
        PooledBuffer ga;
        if (need_input_grads) {
          ga = PooledBuffer(static_cast<size_t>(num_edges * d_in),
                            BufferFill::kZero);
          PooledBuffer wt(static_cast<size_t>(d_in * d_out),
                          BufferFill::kUninit);
          TransposeInto(pw->data.data(), d_in, d_out, wt.data());
          MatMulAccumNN(gm.data(), wt.data(), ga.data(), num_edges, d_out,
                        d_in);
        }
        if (pw->requires_grad) {
          pw->EnsureGrad();
          AccumulateWeightGrad(nd, rd, src, rel, compose, gm.data(),
                               num_edges, d_in, d_out, pw->grad.data());
        }
        if (pn->requires_grad) {
          pn->EnsureGrad();
          ScatterComposeGrad(ga.data(), src, rel, rd, /*negate=*/false,
                             compose, d_in, num_nodes, pn->grad.data());
        }
        if (pr->requires_grad) {
          pr->EnsureGrad();
          ScatterComposeGrad(ga.data(), rel, src, nd,
                             /*negate=*/compose == EdgeCompose::kSubtract,
                             compose, d_in, num_rels, pr->grad.data());
        }
      });
}

namespace {
Tensor RowwiseSoftmaxImpl(const Tensor& x, bool log_space) {
  LOGCL_CHECK(x.defined());
  int64_t rows, cols;
  if (x.shape().rank() == 2) {
    rows = x.shape().rows();
    cols = x.shape().cols();
  } else {
    rows = 1;
    cols = x.num_elements();
  }
  const float* xd = x.data().data();
  std::vector<float> out = UninitOut(rows * cols);
  float* od = out.data();
  ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = xd + i * cols;
      // Max and normalise passes are SIMD; the exp/sum sweep stays a serial
      // scalar chain (a float sum is not exact under lane reordering, and
      // the bitwise contract pins today's accumulation order).
      float m = simd::RowMax(row, cols);
      float sum = 0.0f;
      for (int64_t j = 0; j < cols; ++j) sum += std::exp(row[j] - m);
      float lse = m + std::log(sum);
      float* orow = od + i * cols;
      // The probability path divides by `sum` explicitly rather than using
      // exp(x - lse): when the row max has huge magnitude (e.g. -1e9 masks),
      // lse = m + log(sum) absorbs the log(sum) term in float32 and exp(x-lse)
      // collapses to 1 instead of 1/cols.
      float inv_sum = 1.0f / sum;
      if (log_space) {
        // row[j] + (-lse) is IEEE-identical to row[j] - lse.
        simd::AddScalar(row, -lse, orow, cols);
      } else {
        // Store the rounded exp first, then scale in place: exp(x-m) and
        // exp(x-m)*inv_sum round through the same two operations as the
        // fused expression (multiplication commutes bitwise).
        for (int64_t j = 0; j < cols; ++j) orow[j] = std::exp(row[j] - m);
        simd::Scale(orow, inv_sum, orow, cols);
      }
    }
  });
  return Tensor::MakeOpOutput(
      x.shape(), std::move(out), {x}, [rows, cols, log_space](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        px->EnsureGrad();
        const float* g = node.grad.data();
        const float* y = node.data.data();
        float* gx = px->grad.data();
        ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            const float* grow = g + i * cols;
            const float* yrow = y + i * cols;
            float* gxrow = gx + i * cols;
            if (log_space) {
              // y = x - lse; gx = g - softmax * sum(g)
              float gsum = 0.0f;
              for (int64_t j = 0; j < cols; ++j) gsum += grow[j];
              for (int64_t j = 0; j < cols; ++j) {
                gxrow[j] += grow[j] - std::exp(yrow[j]) * gsum;
              }
            } else {
              float dot = 0.0f;
              for (int64_t j = 0; j < cols; ++j) dot += grow[j] * yrow[j];
              for (int64_t j = 0; j < cols; ++j) {
                gxrow[j] += yrow[j] * (grow[j] - dot);
              }
            }
          }
        });
      });
}
}  // namespace

Tensor Softmax(const Tensor& x) { return RowwiseSoftmaxImpl(x, false); }
Tensor LogSoftmax(const Tensor& x) { return RowwiseSoftmaxImpl(x, true); }

Tensor Sigmoid(const Tensor& x) {
  return ElementwiseUnary(x, ewise::UnaryKind::kSigmoid);
}

Tensor Tanh(const Tensor& x) {
  return ElementwiseUnary(x, ewise::UnaryKind::kTanh);
}

Tensor Relu(const Tensor& x) {
  LOGCL_CHECK(x.defined());
  int64_t n = x.num_elements();
  const float* xv = x.data().data();
  std::vector<float> out = UninitOut(n);
  float* od = out.data();
  ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
    simd::Relu(xv + i0, od + i0, i1 - i0);
  });
  Tensor result = Tensor::MakeOpOutput(
      x.shape(), std::move(out), {x}, [n](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        bool fresh = false;
        float* gx = px->GradForFullWrite(&fresh);
        const float* g = node.grad.data();
        const float* xd = px->data.data();
        ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
          (fresh ? simd::ReluBackwardFresh : simd::ReluBackward)(
              xd + i0, g + i0, gx + i0, i1 - i0);
        });
      });
  if (jit::internal::Tracing()) jit::internal::TraceRelu(x, result);
  return result;
}

Tensor LeakyRelu(const Tensor& x, float slope) {
  return ElementwiseUnary(x, ewise::UnaryKind::kLeakyRelu, slope);
}

Tensor RRelu(const Tensor& x, bool training, Rng* rng) {
  if (!training) return LeakyRelu(x, kRReluEvalSlope);
  LOGCL_CHECK(rng != nullptr);
  int64_t n = x.num_elements();
  const float* xd = x.data().data();
  std::vector<float> slopes(static_cast<size_t>(n));
  std::vector<float> out = UninitOut(n);
  // Serial on purpose: the slopes must consume the RNG stream in index
  // order so training runs are reproducible at any thread count.
  for (int64_t i = 0; i < n; ++i) {
    float s = static_cast<float>(rng->Uniform(kRReluLower, kRReluUpper));
    slopes[static_cast<size_t>(i)] = s;
    out[static_cast<size_t>(i)] = xd[i] > 0.0f ? xd[i] : s * xd[i];
  }
  return Tensor::MakeOpOutput(
      x.shape(), std::move(out), {x}, [n, slopes](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        px->EnsureGrad();
        const float* g = node.grad.data();
        const float* xd = px->data.data();
        float* gx = px->grad.data();
        ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            gx[i] +=
                g[i] * (xd[i] > 0.0f ? 1.0f : slopes[static_cast<size_t>(i)]);
          }
        });
      });
}

Tensor Cos(const Tensor& x) {
  return ElementwiseUnary(x, ewise::UnaryKind::kCos);
}

Tensor Exp(const Tensor& x) {
  return ElementwiseUnary(x, ewise::UnaryKind::kExp);
}

Tensor Log(const Tensor& x, float eps) {
  return ElementwiseUnary(x, ewise::UnaryKind::kLog, eps);
}

Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng) {
  LOGCL_CHECK(x.defined());
  LOGCL_CHECK_GE(p, 0.0f);
  LOGCL_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return x;
  LOGCL_CHECK(rng != nullptr);
  int64_t n = x.num_elements();
  float scale = 1.0f / (1.0f - p);
  const float* xd = x.data().data();
  std::vector<float> mask(static_cast<size_t>(n));
  std::vector<float> out = UninitOut(n);
  // Serial on purpose: mask draws consume the RNG stream in index order
  // (see RRelu).
  for (int64_t i = 0; i < n; ++i) {
    float m = rng->Bernoulli(p) ? 0.0f : scale;
    mask[static_cast<size_t>(i)] = m;
    out[static_cast<size_t>(i)] = xd[i] * m;
  }
  return Tensor::MakeOpOutput(
      x.shape(), std::move(out), {x}, [n, mask](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        px->EnsureGrad();
        const float* g = node.grad.data();
        float* gx = px->grad.data();
        ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
          for (int64_t i = i0; i < i1; ++i) {
            gx[i] += g[i] * mask[static_cast<size_t>(i)];
          }
        });
      });
}

Tensor RowL2Normalize(const Tensor& x, float eps) {
  LOGCL_CHECK(x.defined());
  LOGCL_CHECK_EQ(x.shape().rank(), 2);
  int64_t rows = x.shape().rows();
  int64_t cols = x.shape().cols();
  const float* xd = x.data().data();
  std::vector<float> norms(static_cast<size_t>(rows));
  std::vector<float> out = UninitOut(rows * cols);
  float* od = out.data();
  float* nd = norms.data();
  ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = xd + i * cols;
      float sq = 0.0f;
      for (int64_t j = 0; j < cols; ++j) sq += row[j] * row[j];
      float norm = std::max(std::sqrt(sq), eps);
      nd[i] = norm;
      float inv = 1.0f / norm;
      for (int64_t j = 0; j < cols; ++j) od[i * cols + j] = row[j] * inv;
    }
  });
  return Tensor::MakeOpOutput(
      x.shape(), std::move(out), {x}, [rows, cols, norms, eps](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        px->EnsureGrad();
        const float* g = node.grad.data();
        const float* xd = px->data.data();
        float* gx = px->grad.data();
        ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            float norm = norms[static_cast<size_t>(i)];
            const float* grow = g + i * cols;
            const float* xrow = xd + i * cols;
            float* gxrow = gx + i * cols;
            if (norm <= eps) {
              // Clamped: y = x / eps, constant scale.
              for (int64_t j = 0; j < cols; ++j) gxrow[j] += grow[j] / eps;
              continue;
            }
            float dot = 0.0f;
            for (int64_t j = 0; j < cols; ++j) dot += grow[j] * xrow[j];
            float inv = 1.0f / norm;
            float inv3 = inv * inv * inv;
            for (int64_t j = 0; j < cols; ++j) {
              gxrow[j] += grow[j] * inv - xrow[j] * dot * inv3;
            }
          }
        });
      });
}

namespace {

// Chunk-ordered double sum over [0, n); bitwise identical at any thread
// count (chunk boundaries depend only on n and kGrain).
double ChunkedSum(const float* xd, int64_t n) {
  return ParallelReduce<double>(
      0, n, kGrain, 0.0,
      [xd](int64_t i0, int64_t i1) {
        double sum = 0.0;
        for (int64_t i = i0; i < i1; ++i) sum += xd[i];
        return sum;
      },
      [](double acc, double partial) { return acc + partial; });
}

}  // namespace

Tensor SumAll(const Tensor& x) {
  LOGCL_CHECK(x.defined());
  int64_t n = x.num_elements();
  double sum = ChunkedSum(x.data().data(), n);
  return Tensor::MakeOpOutput(
      Shape{}, ScalarOut(static_cast<float>(sum)), {x}, [n](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        bool fresh = false;
        float* gx = px->GradForFullWrite(&fresh);
        float g = node.grad[0];
        ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
          if (fresh) {
            for (int64_t i = i0; i < i1; ++i) gx[i] = 0.0f + g;
          } else {
            for (int64_t i = i0; i < i1; ++i) gx[i] += g;
          }
        });
      });
}

Tensor MeanAll(const Tensor& x) {
  LOGCL_CHECK(x.defined());
  int64_t n = x.num_elements();
  LOGCL_CHECK_GT(n, 0);
  double sum = ChunkedSum(x.data().data(), n);
  float inv = 1.0f / static_cast<float>(n);
  return Tensor::MakeOpOutput(
      Shape{}, ScalarOut(static_cast<float>(sum) * inv), {x},
      [n, inv](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        bool fresh = false;
        float* gx = px->GradForFullWrite(&fresh);
        float g = node.grad[0] * inv;
        ParallelFor(0, n, kGrain, [&](int64_t i0, int64_t i1) {
          if (fresh) {
            for (int64_t i = i0; i < i1; ++i) gx[i] = 0.0f + g;
          } else {
            for (int64_t i = i0; i < i1; ++i) gx[i] += g;
          }
        });
      });
}

Tensor MeanRows(const Tensor& x) {
  LOGCL_CHECK(x.defined());
  LOGCL_CHECK_EQ(x.shape().rank(), 2);
  int64_t rows = x.shape().rows();
  int64_t cols = x.shape().cols();
  if (rows == 0) {
    return Tensor::Zeros(Shape{1, cols});
  }
  const float* xd = x.data().data();
  // Chunk-ordered column sums: per-chunk row partials are combined in
  // ascending chunk order, thread-count invariant. The reduction works on
  // plain vectors; the scaled result is then written into pooled storage.
  std::vector<float> sums = ParallelReduce<std::vector<float>>(
      0, rows, RowGrain(cols), std::vector<float>(static_cast<size_t>(cols), 0.0f),
      [xd, cols](int64_t r0, int64_t r1) {
        std::vector<float> partial(static_cast<size_t>(cols), 0.0f);
        for (int64_t i = r0; i < r1; ++i) {
          for (int64_t j = 0; j < cols; ++j) {
            partial[static_cast<size_t>(j)] += xd[i * cols + j];
          }
        }
        return partial;
      },
      [](std::vector<float> acc, std::vector<float> partial) {
        for (size_t j = 0; j < acc.size(); ++j) acc[j] += partial[j];
        return acc;
      });
  float inv = 1.0f / static_cast<float>(rows);
  std::vector<float> out = UninitOut(cols);
  for (int64_t j = 0; j < cols; ++j) {
    out[static_cast<size_t>(j)] = sums[static_cast<size_t>(j)] * inv;
  }
  return Tensor::MakeOpOutput(
      Shape{1, cols}, std::move(out), {x}, [rows, cols, inv](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        px->EnsureGrad();
        const float* g = node.grad.data();
        float* gx = px->grad.data();
        ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            for (int64_t j = 0; j < cols; ++j) gx[i * cols + j] += g[j] * inv;
          }
        });
      });
}

Tensor RowSum(const Tensor& x) {
  LOGCL_CHECK(x.defined());
  LOGCL_CHECK_EQ(x.shape().rank(), 2);
  int64_t rows = x.shape().rows();
  int64_t cols = x.shape().cols();
  const float* xd = x.data().data();
  std::vector<float> out = UninitOut(rows);
  float* od = out.data();
  ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      float sum = 0.0f;
      for (int64_t j = 0; j < cols; ++j) sum += xd[i * cols + j];
      od[i] = sum;
    }
  });
  return Tensor::MakeOpOutput(
      Shape{rows, 1}, std::move(out), {x}, [rows, cols](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        px->EnsureGrad();
        const float* g = node.grad.data();
        float* gx = px->grad.data();
        ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            for (int64_t j = 0; j < cols; ++j) gx[i * cols + j] += g[i];
          }
        });
      });
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& targets) {
  LOGCL_CHECK(logits.defined());
  LOGCL_CHECK_EQ(logits.shape().rank(), 2);
  int64_t rows = logits.shape().rows();
  int64_t cols = logits.shape().cols();
  LOGCL_CHECK_EQ(rows, static_cast<int64_t>(targets.size()));
  LOGCL_CHECK_GT(rows, 0);
  const float* xd = logits.data().data();
  // Cache softmax probabilities for the fused backward. Per-row work is
  // parallel; the loss is a chunk-ordered reduction so the total is
  // identical at any thread count.
  std::vector<float> probs(static_cast<size_t>(rows * cols));
  float* pd = probs.data();
  double loss = ParallelReduce<double>(
      0, rows, RowGrain(cols), 0.0,
      [&](int64_t r0, int64_t r1) {
        double partial = 0.0;
        for (int64_t i = r0; i < r1; ++i) {
          const float* row = xd + i * cols;
          int64_t target = targets[static_cast<size_t>(i)];
          LOGCL_CHECK_GE(target, 0);
          LOGCL_CHECK_LT(target, cols);
          float m = -std::numeric_limits<float>::infinity();
          for (int64_t j = 0; j < cols; ++j) m = std::max(m, row[j]);
          float sum = 0.0f;
          for (int64_t j = 0; j < cols; ++j) sum += std::exp(row[j] - m);
          float lse = m + std::log(sum);
          partial += lse - row[target];
          float* prow = pd + i * cols;
          for (int64_t j = 0; j < cols; ++j) prow[j] = std::exp(row[j] - lse);
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
  float mean_loss = static_cast<float>(loss / static_cast<double>(rows));
  return Tensor::MakeOpOutput(
      Shape{}, ScalarOut(mean_loss), {logits},
      [rows, cols, targets, probs = std::move(probs)](Node& node) {
        const auto& px = node.parents[0];
        if (!px->requires_grad) return;
        px->EnsureGrad();
        float g = node.grad[0] / static_cast<float>(rows);
        float* gx = px->grad.data();
        ParallelFor(0, rows, RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            const float* prow = probs.data() + i * cols;
            float* gxrow = gx + i * cols;
            int64_t target = targets[static_cast<size_t>(i)];
            for (int64_t j = 0; j < cols; ++j) gxrow[j] += g * prow[j];
            gxrow[target] -= g;
          }
        });
      });
}

Tensor Conv2x3(const Tensor& h, const Tensor& r, const Tensor& kernels,
               const Tensor& bias) {
  LOGCL_CHECK(h.defined());
  LOGCL_CHECK(r.defined());
  LOGCL_CHECK(kernels.defined());
  LOGCL_CHECK(bias.defined());
  LOGCL_CHECK_EQ(h.shape().rank(), 2);
  LOGCL_CHECK(h.shape() == r.shape());
  int64_t batch = h.shape().rows();
  int64_t d = h.shape().cols();
  LOGCL_CHECK_EQ(kernels.shape().rank(), 2);
  int64_t num_kernels = kernels.shape().rows();
  LOGCL_CHECK_EQ(kernels.shape().cols(), 6);
  LOGCL_CHECK_EQ(bias.num_elements(), num_kernels);

  const float* hd = h.data().data();
  const float* rd = r.data().data();
  const float* kd = kernels.data().data();
  const float* bd = bias.data().data();
  std::vector<float> out = UninitOut(batch * num_kernels * d);
  float* od = out.data();
  int64_t batch_grain = RowGrain(num_kernels * d);
  ParallelFor(0, batch, batch_grain, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const float* hrow = hd + b * d;
      const float* rrow = rd + b * d;
      for (int64_t k = 0; k < num_kernels; ++k) {
        const float* kr = kd + k * 6;
        float* orow = od + (b * num_kernels + k) * d;
        for (int64_t j = 0; j < d; ++j) {
          float acc = bd[k];
          for (int64_t w = 0; w < 3; ++w) {
            int64_t src = j + w - 1;
            if (src < 0 || src >= d) continue;
            acc += kr[w] * hrow[src] + kr[3 + w] * rrow[src];
          }
          orow[j] = acc;
        }
      }
    }
  });
  return Tensor::MakeOpOutput(
      Shape{batch, num_kernels * d}, std::move(out), {h, r, kernels, bias},
      [batch, d, num_kernels, batch_grain](Node& node) {
        const auto& ph = node.parents[0];
        const auto& pr = node.parents[1];
        const auto& pk = node.parents[2];
        const auto& pb = node.parents[3];
        const float* g = node.grad.data();
        const float* hd = ph->data.data();
        const float* rd = pr->data.data();
        const float* kd = pk->data.data();
        float* gh = nullptr;
        float* gr = nullptr;
        float* gk = nullptr;
        float* gb = nullptr;
        if (ph->requires_grad) { ph->EnsureGrad(); gh = ph->grad.data(); }
        if (pr->requires_grad) { pr->EnsureGrad(); gr = pr->grad.data(); }
        if (pk->requires_grad) { pk->EnsureGrad(); gk = pk->grad.data(); }
        if (pb->requires_grad) { pb->EnsureGrad(); gb = pb->grad.data(); }
        // gh/gr rows are per-batch (disjoint across shards); gk/gb
        // accumulate across the whole batch, so they go through per-chunk
        // partials combined in chunk order (thread-count invariant).
        int64_t kb_size = num_kernels * 7;  // 6 kernel taps + 1 bias
        std::vector<float> kb = ParallelReduce<std::vector<float>>(
            0, batch, batch_grain,
            std::vector<float>(
                static_cast<size_t>(gk != nullptr || gb != nullptr ? kb_size
                                                                   : 0),
                0.0f),
            [&](int64_t b0, int64_t b1) {
              std::vector<float> local(
                  static_cast<size_t>(gk != nullptr || gb != nullptr ? kb_size
                                                                     : 0),
                  0.0f);
              float* lk = local.empty() ? nullptr : local.data();
              float* lb = local.empty() ? nullptr : local.data() + num_kernels * 6;
              for (int64_t b = b0; b < b1; ++b) {
                const float* hrow = hd + b * d;
                const float* rrow = rd + b * d;
                for (int64_t k = 0; k < num_kernels; ++k) {
                  const float* kr = kd + k * 6;
                  const float* grow = g + (b * num_kernels + k) * d;
                  for (int64_t j = 0; j < d; ++j) {
                    float gv = grow[j];
                    if (gv == 0.0f) continue;
                    if (lb != nullptr) lb[k] += gv;
                    for (int64_t w = 0; w < 3; ++w) {
                      int64_t src = j + w - 1;
                      if (src < 0 || src >= d) continue;
                      if (gh != nullptr) gh[b * d + src] += gv * kr[w];
                      if (gr != nullptr) gr[b * d + src] += gv * kr[3 + w];
                      if (lk != nullptr) {
                        lk[k * 6 + w] += gv * hrow[src];
                        lk[k * 6 + 3 + w] += gv * rrow[src];
                      }
                    }
                  }
                }
              }
              return local;
            },
            [](std::vector<float> acc, std::vector<float> partial) {
              for (size_t i = 0; i < acc.size(); ++i) acc[i] += partial[i];
              return acc;
            });
        if (gk != nullptr) {
          for (int64_t i = 0; i < num_kernels * 6; ++i) gk[i] += kb[i];
        }
        if (gb != nullptr) {
          for (int64_t k = 0; k < num_kernels; ++k) {
            gb[k] += kb[num_kernels * 6 + k];
          }
        }
      });
}

Tensor Conv2d(const Tensor& input, int64_t channels, int64_t height,
              int64_t width, const Tensor& kernels, int64_t kernel_h,
              int64_t kernel_w, int64_t pad, const Tensor& bias) {
  LOGCL_CHECK(input.defined());
  LOGCL_CHECK(kernels.defined());
  LOGCL_CHECK(bias.defined());
  LOGCL_CHECK_EQ(input.shape().rank(), 2);
  int64_t batch = input.shape().rows();
  LOGCL_CHECK_EQ(input.shape().cols(), channels * height * width);
  LOGCL_CHECK_EQ(kernels.shape().rank(), 2);
  int64_t num_kernels = kernels.shape().rows();
  LOGCL_CHECK_EQ(kernels.shape().cols(), channels * kernel_h * kernel_w);
  LOGCL_CHECK_EQ(bias.num_elements(), num_kernels);

  const float* in = input.data().data();
  const float* kd = kernels.data().data();
  const float* bd = bias.data().data();
  int64_t plane = height * width;
  std::vector<float> out = UninitOut(batch * num_kernels * plane);
  float* od = out.data();
  int64_t batch_grain =
      RowGrain(num_kernels * plane * channels * kernel_h * kernel_w);
  ParallelFor(0, batch, batch_grain, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const float* img = in + b * channels * plane;
      for (int64_t k = 0; k < num_kernels; ++k) {
        const float* kern = kd + k * channels * kernel_h * kernel_w;
        float* oplane = od + (b * num_kernels + k) * plane;
        for (int64_t y = 0; y < height; ++y) {
          for (int64_t x = 0; x < width; ++x) {
            float acc = bd[k];
            for (int64_t c = 0; c < channels; ++c) {
              for (int64_t i = 0; i < kernel_h; ++i) {
                int64_t sy = y + i - pad;
                if (sy < 0 || sy >= height) continue;
                for (int64_t j = 0; j < kernel_w; ++j) {
                  int64_t sx = x + j - pad;
                  if (sx < 0 || sx >= width) continue;
                  acc += kern[(c * kernel_h + i) * kernel_w + j] *
                         img[c * plane + sy * width + sx];
                }
              }
            }
            oplane[y * width + x] = acc;
          }
        }
      }
    }
  });
  return Tensor::MakeOpOutput(
      Shape{batch, num_kernels * plane}, std::move(out), {input, kernels, bias},
      [batch, channels, height, width, num_kernels, kernel_h, kernel_w, pad,
       batch_grain](Node& node) {
        const auto& pin = node.parents[0];
        const auto& pk = node.parents[1];
        const auto& pb = node.parents[2];
        const float* g = node.grad.data();
        const float* in = pin->data.data();
        const float* kd = pk->data.data();
        float* gin = nullptr;
        float* gk = nullptr;
        float* gb = nullptr;
        if (pin->requires_grad) { pin->EnsureGrad(); gin = pin->grad.data(); }
        if (pk->requires_grad) { pk->EnsureGrad(); gk = pk->grad.data(); }
        if (pb->requires_grad) { pb->EnsureGrad(); gb = pb->grad.data(); }
        int64_t plane = height * width;
        int64_t kern_size = channels * kernel_h * kernel_w;
        // Same decomposition as Conv2x3's backward: gin is batch-sharded,
        // gk/gb go through chunk-ordered partials.
        int64_t kb_size = num_kernels * (kern_size + 1);
        std::vector<float> kb = ParallelReduce<std::vector<float>>(
            0, batch, batch_grain,
            std::vector<float>(
                static_cast<size_t>(gk != nullptr || gb != nullptr ? kb_size
                                                                   : 0),
                0.0f),
            [&](int64_t b0, int64_t b1) {
              std::vector<float> local(
                  static_cast<size_t>(gk != nullptr || gb != nullptr ? kb_size
                                                                     : 0),
                  0.0f);
              float* lk = local.empty() ? nullptr : local.data();
              float* lb = local.empty()
                              ? nullptr
                              : local.data() + num_kernels * kern_size;
              for (int64_t b = b0; b < b1; ++b) {
                const float* img = in + b * channels * plane;
                for (int64_t k = 0; k < num_kernels; ++k) {
                  const float* kern = kd + k * kern_size;
                  const float* gplane = g + (b * num_kernels + k) * plane;
                  for (int64_t y = 0; y < height; ++y) {
                    for (int64_t x = 0; x < width; ++x) {
                      float gv = gplane[y * width + x];
                      if (gv == 0.0f) continue;
                      if (lb != nullptr) lb[k] += gv;
                      for (int64_t c = 0; c < channels; ++c) {
                        for (int64_t i = 0; i < kernel_h; ++i) {
                          int64_t sy = y + i - pad;
                          if (sy < 0 || sy >= height) continue;
                          for (int64_t j = 0; j < kernel_w; ++j) {
                            int64_t sx = x + j - pad;
                            if (sx < 0 || sx >= width) continue;
                            int64_t kidx = (c * kernel_h + i) * kernel_w + j;
                            int64_t iidx = c * plane + sy * width + sx;
                            if (gin != nullptr) {
                              gin[b * channels * plane + iidx] +=
                                  gv * kern[kidx];
                            }
                            if (lk != nullptr) {
                              lk[k * kern_size + kidx] += gv * img[iidx];
                            }
                          }
                        }
                      }
                    }
                  }
                }
              }
              return local;
            },
            [](std::vector<float> acc, std::vector<float> partial) {
              for (size_t i = 0; i < acc.size(); ++i) acc[i] += partial[i];
              return acc;
            });
        if (gk != nullptr) {
          for (int64_t i = 0; i < num_kernels * kern_size; ++i) gk[i] += kb[i];
        }
        if (gb != nullptr) {
          for (int64_t k = 0; k < num_kernels; ++k) {
            gb[k] += kb[num_kernels * kern_size + k];
          }
        }
      });
}

}  // namespace ops
}  // namespace logcl
