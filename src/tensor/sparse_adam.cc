#include "tensor/sparse_adam.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/parallel.h"

namespace logcl {

namespace {

// Bit-pattern zero test: a row whose moments are all +0.0 bitwise cannot
// move under a zero-gradient replay, so its catch-up short-circuits. -0.0
// fails the test on purpose (a zero-gradient step rewrites it to +0.0, so
// it must be replayed for bitwise parity with the dense optimizer).
inline bool BitsZero(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits == 0;
}

}  // namespace

SparseAdamOptimizer::SparseAdamOptimizer(std::vector<Tensor> parameters,
                                         AdamOptions options)
    : parameters_(std::move(parameters)), options_(options) {
  moment1_.reserve(parameters_.size());
  moment2_.reserve(parameters_.size());
  for (const Tensor& p : parameters_) {
    LOGCL_CHECK(p.defined());
    LOGCL_CHECK(p.requires_grad()) << "optimizer parameter without grad";
    size_t n = p.data().size();
    moment1_.emplace_back(n, BufferFill::kZero);
    moment2_.emplace_back(n, BufferFill::kZero);
    int64_t rows = p.shape().rank() >= 2 ? p.shape().dims()[0]
                                         : static_cast<int64_t>(n);
    num_rows_.push_back(rows);
    row_len_.push_back(rows > 0 ? static_cast<int64_t>(n) / rows : 0);
    last_step_.emplace_back(static_cast<size_t>(rows), 0);
    dirty_.emplace_back(static_cast<size_t>(rows), 0);
  }
}

void SparseAdamOptimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

std::vector<int64_t> SparseAdamOptimizer::NonZeroGradRows(
    const Tensor& parameter) {
  const std::vector<float>& grad = parameter.grad();
  int64_t rows = parameter.shape().rank() >= 2
                     ? parameter.shape().dims()[0]
                     : static_cast<int64_t>(grad.size());
  int64_t row_len =
      rows > 0 ? static_cast<int64_t>(grad.size()) / rows : 0;
  std::vector<int64_t> touched;
  for (int64_t r = 0; r < rows; ++r) {
    const float* g = grad.data() + r * row_len;
    for (int64_t j = 0; j < row_len; ++j) {
      // Bit test, not == 0.0f: a -0.0 gradient decays moments differently
      // from the +0.0 a replay substitutes, so it counts as touched.
      if (!BitsZero(g[j])) {
        touched.push_back(r);
        break;
      }
    }
  }
  return touched;
}

bool SparseAdamOptimizer::ReplayRow(size_t i, int64_t row,
                                    int64_t target_step) {
  int64_t& last = last_step_[i][static_cast<size_t>(row)];
  if (last >= target_step) return false;
  int64_t len = row_len_[i];
  float* d = parameters_[i].mutable_data().data() + row * len;
  float* m = &moment1_[i][static_cast<size_t>(row * len)];
  float* v = &moment2_[i][static_cast<size_t>(row * len)];
  if (options_.weight_decay == 0.0f) {
    // Zero moments (bitwise) stay zero under g = 0 and leave the row's
    // values untouched, for any number of skipped steps.
    bool all_zero = true;
    for (int64_t j = 0; j < len; ++j) {
      if (!BitsZero(m[j]) || !BitsZero(v[j])) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) {
      last = target_step;
      return false;
    }
  }
  // Replay the skipped steps with g = 0, arithmetic identical to
  // AdamOptimizer::Step so a touched row rejoins the dense trajectory
  // bitwise. The loop usually terminates long before target_step via the
  // decayed moments reaching bitwise zero.
  for (int64_t s = last + 1; s <= target_step; ++s) {
    float bias1 = 1.0f - std::pow(options_.beta1, static_cast<float>(s));
    float bias2 = 1.0f - std::pow(options_.beta2, static_cast<float>(s));
    for (int64_t j = 0; j < len; ++j) {
      float& dj = d[j];
      float& mj = m[j];
      float& vj = v[j];
      if (options_.weight_decay > 0.0f) {
        dj -= options_.learning_rate * options_.weight_decay * dj;
      }
      mj = options_.beta1 * mj + (1.0f - options_.beta1) * 0.0f;
      vj = options_.beta2 * vj + (1.0f - options_.beta2) * 0.0f * 0.0f;
      float m_hat = mj / bias1;
      float v_hat = vj / bias2;
      dj -= options_.learning_rate * m_hat /
            (std::sqrt(v_hat) + options_.epsilon);
    }
  }
  last = target_step;
  return true;
}

void SparseAdamOptimizer::Step(
    const std::vector<std::vector<int64_t>>& touched_rows) {
  LOGCL_CHECK_EQ(touched_rows.size(), parameters_.size());
  ++step_;
  float bias1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  float bias2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    const std::vector<int64_t>& rows = touched_rows[i];
    std::vector<float>& data = parameters_[i].mutable_data();
    const std::vector<float>& grad = parameters_[i].grad();
    PooledBuffer& m1 = moment1_[i];
    PooledBuffer& m2 = moment2_[i];
    int64_t len = row_len_[i];
    // Rows update independently, so the split is free to vary with the
    // thread count without changing the result (same argument as the dense
    // optimizer's element split).
    ParallelFor(
        0, static_cast<int64_t>(rows.size()), /*grain=*/16,
        [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            int64_t row = rows[static_cast<size_t>(r)];
            LOGCL_CHECK(row >= 0 && row < num_rows_[i])
                << "touched row out of range";
            ReplayRow(i, row, step_ - 1);
            float* d = data.data() + row * len;
            const float* g = grad.data() + row * len;
            float* m = &m1[static_cast<size_t>(row * len)];
            float* v = &m2[static_cast<size_t>(row * len)];
            for (int64_t j = 0; j < len; ++j) {
              float gj = g[j];
              float& dj = d[j];
              float& mj = m[j];
              float& vj = v[j];
              if (options_.weight_decay > 0.0f) {
                dj -= options_.learning_rate * options_.weight_decay * dj;
              }
              mj = options_.beta1 * mj + (1.0f - options_.beta1) * gj;
              vj = options_.beta2 * vj + (1.0f - options_.beta2) * gj * gj;
              float m_hat = mj / bias1;
              float v_hat = vj / bias2;
              dj -= options_.learning_rate * m_hat /
                    (std::sqrt(v_hat) + options_.epsilon);
            }
            last_step_[i][static_cast<size_t>(row)] = step_;
            dirty_[i][static_cast<size_t>(row)] = 1;
          }
        });
  }
}

void SparseAdamOptimizer::CatchUp() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    ParallelFor(0, num_rows_[i], /*grain=*/64, [&](int64_t r0, int64_t r1) {
      for (int64_t row = r0; row < r1; ++row) {
        if (ReplayRow(i, row, step_)) {
          dirty_[i][static_cast<size_t>(row)] = 1;
        }
      }
    });
  }
}

std::vector<std::vector<int64_t>> SparseAdamOptimizer::DrainDirtyRows() {
  std::vector<std::vector<int64_t>> drained(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    for (int64_t row = 0; row < num_rows_[i]; ++row) {
      if (dirty_[i][static_cast<size_t>(row)] != 0) {
        drained[i].push_back(row);
        dirty_[i][static_cast<size_t>(row)] = 0;
      }
    }
  }
  return drained;
}

}  // namespace logcl
