// Differentiable operations on Tensor. Every op computes its forward result
// eagerly and, when grad mode is enabled and an input requires grad, records
// a backward closure on the output (see tensor/backward.cc).
//
// Shape conventions: 2-D tensors are row-major [rows, cols]; a "column"
// tensor means shape [n, 1]; a "row" tensor means [1, d] (rank-1 [d] is also
// accepted where noted). Scalars have rank 0.

#ifndef LOGCL_TENSOR_OPS_H_
#define LOGCL_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/edge_csr.h"
#include "tensor/tensor.h"

namespace logcl {
namespace ops {

// ---------------------------------------------------------------------------
// Elementwise arithmetic. Add/Sub/Mul accept:
//   * identical shapes,
//   * scalar `b` (rank 0),
//   * row-broadcast: `a` is [n, d] and `b` is [1, d] or rank-1 [d].
// ---------------------------------------------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);

/// x is [n, d]; col is [n, 1] (or rank-1 [n]). Multiplies row i of x by
/// col[i] (column-broadcast); used for attention-weighted sums.
Tensor MulColBroadcast(const Tensor& x, const Tensor& col);

Tensor Neg(const Tensor& a);
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------
/// [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// 2-D transpose.
Tensor Transpose(const Tensor& a);
/// Same element count; data is copied (dense layout).
Tensor Reshape(const Tensor& a, const Shape& shape);

// ---------------------------------------------------------------------------
// Concatenation / slicing (2-D).
// ---------------------------------------------------------------------------
Tensor ConcatCols(const std::vector<Tensor>& parts);
Tensor ConcatRows(const std::vector<Tensor>& parts);
Tensor SliceCols(const Tensor& a, int64_t start, int64_t count);
Tensor SliceRows(const Tensor& a, int64_t start, int64_t count);

// ---------------------------------------------------------------------------
// Gather / scatter (message passing primitives).
// ---------------------------------------------------------------------------
/// out[i, :] = x[indices[i], :]. Differentiable w.r.t. x (scatter-add).
Tensor IndexSelectRows(const Tensor& x, const std::vector<int64_t>& indices);
/// out has `num_rows` rows; out[indices[i], :] += values[i, :].
Tensor ScatterAddRows(const Tensor& values, const std::vector<int64_t>& indices,
                      int64_t num_rows);
/// Like ScatterAddRows but divides each output row by its receive count
/// (rows receiving nothing stay zero) — the 1/c_o normalisation of Eq.4.
Tensor ScatterMeanRows(const Tensor& values,
                       const std::vector<int64_t>& indices, int64_t num_rows);
/// logits is [n, 1] or rank-1 [n]; softmax within groups of equal
/// segment_ids[i] (ids in [0, num_segments)). Returns [n, 1]. Used by KBGAT
/// edge attention.
Tensor SegmentSoftmax(const Tensor& logits,
                      const std::vector<int64_t>& segment_ids,
                      int64_t num_segments);

// ---------------------------------------------------------------------------
// CSR-layout scatter variants. Bitwise identical to the index-vector
// overloads above (the CSR keeps each destination's edges in ascending edge
// id, matching the serial accumulation order), but each destination row
// visits only its own edges and ScatterMeanRows reads the cached in-degrees
// instead of recounting per call.
// ---------------------------------------------------------------------------
Tensor ScatterAddRows(const Tensor& values, const EdgeCsrPtr& csr);
Tensor ScatterMeanRows(const Tensor& values, const EdgeCsrPtr& csr);
/// CSR rows are softmax segments here (csr->num_edges == logits elements).
Tensor SegmentSoftmax(const Tensor& logits, const EdgeCsrPtr& csr);

// ---------------------------------------------------------------------------
// Fused relational message passing.
// ---------------------------------------------------------------------------
/// Per-edge composition of source-node and relation features (CompGCN's
/// phi): kAdd is h_s + h_r, kSubtract h_s - h_r, kMultiply h_s * h_r.
enum class EdgeCompose { kAdd, kSubtract, kMultiply };

/// Whether the graph layers route through the fused kernels (default on;
/// env LOGCL_FUSED_MP=0 disables). The composed chain stays available as a
/// bitwise-identical reference for tests and benchmarks.
bool FusedMessagePassingEnabled();
void SetFusedMessagePassingEnabled(bool enabled);

/// messages[e, :] = compose(nodes[src[e], :], relations[rel[e], :]) * weight.
/// One op replacing IndexSelectRows x2 -> compose -> MatMul for layers that
/// must materialize per-edge messages (KBGAT attention); custom backward
/// avoids putting the two gathered [E, d] tensors on the tape.
Tensor EdgeMessages(const Tensor& nodes, const Tensor& relations,
                    const Tensor& weight, const std::vector<int64_t>& src,
                    const std::vector<int64_t>& rel, EdgeCompose compose);

/// out[v, :] = mean over in-edges e of v of
///   compose(nodes[src[e], :], relations[rel[e], :]) * weight.
/// The full IndexSelectRows x2 -> compose -> MatMul -> ScatterMeanRows chain
/// as ONE autograd op: per-edge messages stream through register tiles and
/// never hit the tape. `dst` and `dst_csr` must describe the same edge list
/// (dst_csr = EdgeCsr::Build(dst, num_nodes), normally the graph's cached
/// layout). Bitwise identical to the composed chain at any thread count.
Tensor FusedRelMessagePassing(const Tensor& nodes, const Tensor& relations,
                              const Tensor& weight,
                              const std::vector<int64_t>& src,
                              const std::vector<int64_t>& rel,
                              const std::vector<int64_t>& dst,
                              const EdgeCsrPtr& dst_csr, EdgeCompose compose);

// ---------------------------------------------------------------------------
// Nonlinearities / normalisations.
// ---------------------------------------------------------------------------
/// Row-wise softmax of a [n, d] tensor (or over all elements for rank-1).
Tensor Softmax(const Tensor& x);
Tensor LogSoftmax(const Tensor& x);
Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Relu(const Tensor& x);
Tensor LeakyRelu(const Tensor& x, float slope);
/// Randomised leaky ReLU (Eq.4's sigma_1). Training samples slopes uniformly
/// in [1/8, 1/3] (torch defaults); eval uses the fixed mean slope.
Tensor RRelu(const Tensor& x, bool training, Rng* rng);
Tensor Cos(const Tensor& x);
Tensor Exp(const Tensor& x);
/// Natural log; inputs are clamped to >= eps for stability.
Tensor Log(const Tensor& x, float eps = 1e-12f);
/// Inverted dropout; identity when !training or p == 0.
Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng);
/// Divides each row by max(||row||_2, eps).
Tensor RowL2Normalize(const Tensor& x, float eps = 1e-8f);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------
Tensor SumAll(const Tensor& x);
Tensor MeanAll(const Tensor& x);
/// [n, d] -> [1, d] column means. Returns zeros for n == 0.
Tensor MeanRows(const Tensor& x);
/// [n, d] -> [n, 1] row sums.
Tensor RowSum(const Tensor& x);

// ---------------------------------------------------------------------------
// Losses.
// ---------------------------------------------------------------------------
/// Mean softmax cross-entropy of [B, C] logits against integer targets.
/// Fused forward/backward (grad = (softmax - onehot)/B).
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& targets);

// ---------------------------------------------------------------------------
// Convolutions (decoders).
// ---------------------------------------------------------------------------
/// The ConvTransE feature extractor: h and r are [B, d]; treats (h, r) as a
/// 2-channel length-d signal, applies K kernels of size 2x3 with zero pad 1,
/// and returns the [B, K*d] feature map. `kernels` is [K, 6] laid out as
/// (channel-major: h[-1], h[0], h[+1], r[-1], r[0], r[+1]); `bias` is
/// rank-1 [K] added per kernel.
Tensor Conv2x3(const Tensor& h, const Tensor& r, const Tensor& kernels,
               const Tensor& bias);

/// Minimal NCHW 2-D convolution for the ConvE baseline. `input` is
/// [B, C*H*W] viewed as C x H x W per row; `kernels` is [K, C*kh*kw]; zero
/// padding `pad` on both spatial axes, stride 1. Returns [B, K*H*W].
Tensor Conv2d(const Tensor& input, int64_t channels, int64_t height,
              int64_t width, const Tensor& kernels, int64_t kernel_h,
              int64_t kernel_w, int64_t pad, const Tensor& bias);

}  // namespace ops
}  // namespace logcl

#endif  // LOGCL_TENSOR_OPS_H_
