#include "tensor/shape.h"

#include "common/logging.h"

namespace logcl {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) LOGCL_CHECK_GE(d, 0);
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) LOGCL_CHECK_GE(d, 0);
}

int64_t Shape::dim(int i) const {
  LOGCL_CHECK_GE(i, 0);
  LOGCL_CHECK_LT(i, rank());
  return dims_[i];
}

int64_t Shape::num_elements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::string Shape::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace logcl
