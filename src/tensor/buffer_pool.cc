#include "tensor/buffer_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/observability.h"
#include "common/runtime_config.h"
#include "common/stringpiece.h"

namespace logcl {
namespace {

// Bytes a thread may keep in its local cache before releases spill to the
// global tier. Big enough for one training step's working set of small
// tensors; large activations (entity-score matrices) go global where any
// thread can reuse them.
constexpr size_t kThreadCacheMaxBytes = size_t{32} << 20;

std::atomic<bool>& PoolEnabledFlag() {
  static std::atomic<bool> flag(RuntimeConfig::Get().tensor_pool);
  return flag;
}

std::atomic<bool>& PoisonFlag() {
  static std::atomic<bool> flag(RuntimeConfig::Get().poison_uninit);
  return flag;
}

std::atomic<int64_t>& PoolCapFlag() {
  static std::atomic<int64_t> cap(RuntimeConfig::Get().pool_max_mb *
                                  (int64_t{1} << 20));
  return cap;
}

// Per-thread statistics block. Only the owning thread writes, so updates are
// single-writer relaxed load+store pairs — an ordinary increment, no lock
// prefix — which keeps stat upkeep near-free on the acquire/release hot
// path. PoolSnapshot() sums every registered block: exact once writers are
// quiescent (which is when tests and benchmarks read it). Blocks are held
// alive by the registry after their thread exits so no counts are lost.
// Gauges (outstanding, pooled_*) can go negative in one block when a buffer
// acquired on thread A is released on thread B; only the sum is meaningful.
struct StatBlock {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> releases{0};
  std::atomic<uint64_t> adoptions{0};
  std::atomic<uint64_t> bytes_requested{0};
  std::atomic<int64_t> outstanding{0};
  std::atomic<int64_t> pooled_buffers{0};
  std::atomic<int64_t> pooled_bytes{0};
};

template <typename T>
inline void Bump(std::atomic<T>& counter, T delta) {
  counter.store(counter.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
}

// Leaky singletons throughout: worker threads flush their caches through
// these from thread-exit destructors, which may run during process teardown.
struct StatRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<StatBlock>> blocks;
};

StatRegistry& Registry() {
  static StatRegistry* registry = new StatRegistry;
  return *registry;
}

// live/peak stay process-global: the high-water mark needs a serialised view
// of total live bytes, so these two are the only cross-thread RMWs on the
// acquire path.
std::atomic<int64_t>& LiveBytes() {
  static std::atomic<int64_t>* live = new std::atomic<int64_t>(0);
  return *live;
}

std::atomic<int64_t>& PeakLiveBytes() {
  static std::atomic<int64_t>* peak = new std::atomic<int64_t>(0);
  return *peak;
}

void NoteLiveDelta(int64_t delta_bytes) {
  int64_t live =
      LiveBytes().fetch_add(delta_bytes, std::memory_order_relaxed) +
      delta_bytes;
  if (delta_bytes > 0) {
    std::atomic<int64_t>& peak_counter = PeakLiveBytes();
    int64_t peak = peak_counter.load(std::memory_order_relaxed);
    while (live > peak && !peak_counter.compare_exchange_weak(
                              peak, live, std::memory_order_relaxed)) {
    }
  }
}

// Global tier: exact-size buckets behind a mutex. The mutex acquire/release
// pair is the happens-before edge for buffers handed across threads.
class GlobalPool {
 public:
  bool Pop(size_t num_elements, std::vector<float>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = buckets_.find(num_elements);
    if (it == buckets_.end() || it->second.empty()) return false;
    *out = std::move(it->second.back());
    it->second.pop_back();
    bytes_ -= static_cast<int64_t>(num_elements * sizeof(float));
    return true;
  }

  // Pools `buffer`. When BufferPoolCapBytes() would be exceeded, every
  // pooled buffer is dropped first and the hot working set re-pools within
  // an iteration — bounded memory for workloads whose allocation sizes
  // drift (each new size is a bucket the old sizes never vacate). Returns
  // (buffers, bytes) dropped — including `buffer` itself when it alone
  // exceeds the cap — so the caller can settle the pooled_* stat gauges.
  std::pair<int64_t, int64_t> Push(std::vector<float>&& buffer) {
    const int64_t incoming = static_cast<int64_t>(buffer.size() *
                                                  sizeof(float));
    const int64_t cap = BufferPoolCapBytes();
    std::lock_guard<std::mutex> lock(mu_);
    std::pair<int64_t, int64_t> dropped{0, 0};
    if (cap > 0 && bytes_ + incoming > cap) dropped = TrimLocked();
    if (cap > 0 && incoming > cap) {
      dropped.first += 1;
      dropped.second += incoming;
      return dropped;  // buffer dies here: it could never be cap-resident
    }
    buckets_[buffer.size()].push_back(std::move(buffer));
    bytes_ += incoming;
    return dropped;
  }

  // Drops all buckets; returns (buffers, bytes) dropped for the counters.
  std::pair<int64_t, int64_t> Trim() {
    std::lock_guard<std::mutex> lock(mu_);
    return TrimLocked();
  }

 private:
  std::pair<int64_t, int64_t> TrimLocked() {
    int64_t buffers = 0;
    for (auto& [n, list] : buckets_) {
      buffers += static_cast<int64_t>(list.size());
    }
    int64_t bytes = bytes_;
    buckets_.clear();
    bytes_ = 0;
    return {buffers, bytes};
  }

  std::mutex mu_;
  std::unordered_map<size_t, std::vector<std::vector<float>>> buckets_;
  int64_t bytes_ = 0;  // pooled bytes in buckets_, maintained under mu_
};

GlobalPool& Global() {
  static GlobalPool* pool = new GlobalPool;
  return *pool;
}

// Thread-local tier: no locking; spills to the global pool once the byte
// budget is exhausted and flushes there when the thread exits. A small
// direct-mapped "front" (one buffer per slot, keyed by exact size) serves
// the op-chain steady state — the same handful of shapes cycling acquire/
// release — without touching the bucket map.
struct ThreadCache {
  static constexpr size_t kFrontSlots = 8;
  struct Slot {
    size_t num_elements = 0;
    std::vector<float> buffer;
  };
  Slot front[kFrontSlots];
  std::unordered_map<size_t, std::vector<std::vector<float>>> buckets;
  size_t cached_bytes = 0;
  std::shared_ptr<StatBlock> stats;

  ThreadCache() : stats(std::make_shared<StatBlock>()) {
    {
      StatRegistry& registry = Registry();
      std::lock_guard<std::mutex> lock(registry.mu);
      registry.blocks.push_back(stats);
    }
    // First pool touch process-wide: publish the pool counters into metric
    // snapshots under the logcl.pool.* schema (DESIGN.md §12).
    static std::once_flag metrics_once;
    std::call_once(metrics_once, [] {
      Metrics().RegisterSource([](std::vector<MetricValue>* out) {
        BufferPoolStats s = PoolSnapshot();
        auto counter = [out](const char* name, uint64_t value) {
          MetricValue m;
          m.name = name;
          m.kind = MetricKind::kCounter;
          m.value = value;
          out->push_back(std::move(m));
        };
        auto gauge = [out](const char* name, uint64_t value) {
          MetricValue m;
          m.name = name;
          m.kind = MetricKind::kGauge;
          m.gauge = static_cast<int64_t>(value);
          out->push_back(std::move(m));
        };
        counter("logcl.pool.acquires", s.acquires);
        counter("logcl.pool.hits", s.hits);
        counter("logcl.pool.misses", s.misses);
        counter("logcl.pool.releases", s.releases);
        counter("logcl.pool.adoptions", s.adoptions);
        counter("logcl.pool.bytes_requested", s.bytes_requested);
        gauge("logcl.pool.live_bytes", s.live_bytes);
        gauge("logcl.pool.peak_live_bytes", s.peak_live_bytes);
        gauge("logcl.pool.outstanding_buffers", s.outstanding_buffers);
        gauge("logcl.pool.pooled_buffers", s.pooled_buffers);
        gauge("logcl.pool.pooled_bytes", s.pooled_bytes);
      });
    });
  }

  static size_t SlotIndex(size_t num_elements) {
    // Fibonacci hash; top bits select among kFrontSlots.
    return (num_elements * size_t{0x9E3779B97F4A7C15}) >> 61;
  }

  bool Pop(size_t num_elements, std::vector<float>* out) {
    Slot& slot = front[SlotIndex(num_elements)];
    if (slot.num_elements == num_elements && !slot.buffer.empty()) {
      *out = std::move(slot.buffer);
      slot.buffer.clear();
      cached_bytes -= num_elements * sizeof(float);
      return true;
    }
    auto it = buckets.find(num_elements);
    if (it == buckets.end() || it->second.empty()) return false;
    *out = std::move(it->second.back());
    it->second.pop_back();
    cached_bytes -= num_elements * sizeof(float);
    return true;
  }

  bool TryPush(std::vector<float>&& buffer) {
    size_t bytes = buffer.size() * sizeof(float);
    if (cached_bytes + bytes > kThreadCacheMaxBytes) return false;
    Slot& slot = front[SlotIndex(buffer.size())];
    if (slot.buffer.empty()) {
      slot.num_elements = buffer.size();
      slot.buffer = std::move(buffer);
    } else if (slot.num_elements == buffer.size()) {
      // Keep the newest buffer in the slot (LIFO cache warmth); displace
      // the old occupant to its bucket.
      buckets[slot.num_elements].push_back(std::move(slot.buffer));
      slot.buffer = std::move(buffer);
    } else {
      buckets[buffer.size()].push_back(std::move(buffer));
    }
    cached_bytes += bytes;
    return true;
  }

  std::pair<int64_t, int64_t> Trim() {
    int64_t buffers = 0;
    for (Slot& slot : front) {
      if (!slot.buffer.empty()) ++buffers;
      slot.num_elements = 0;
      std::vector<float>().swap(slot.buffer);
    }
    for (auto& [n, list] : buckets) {
      buffers += static_cast<int64_t>(list.size());
    }
    int64_t bytes = static_cast<int64_t>(cached_bytes);
    buckets.clear();
    cached_bytes = 0;
    return {buffers, bytes};
  }

  ~ThreadCache() {
    // Keep the buffers pooled: hand them to the global tier (still counted
    // in pooled_bytes unless the cap drops them). The stats block stays
    // registered so this thread's counts survive.
    int64_t dropped_buffers = 0;
    int64_t dropped_bytes = 0;
    auto spill = [&](std::vector<float>&& buffer) {
      auto [buffers, bytes] = Global().Push(std::move(buffer));
      dropped_buffers += buffers;
      dropped_bytes += bytes;
    };
    for (Slot& slot : front) {
      if (!slot.buffer.empty()) spill(std::move(slot.buffer));
    }
    for (auto& [n, list] : buckets) {
      for (auto& buffer : list) spill(std::move(buffer));
    }
    Bump(stats->pooled_buffers, -dropped_buffers);
    Bump(stats->pooled_bytes, -dropped_bytes);
  }
};

ThreadCache& LocalCache() {
  thread_local ThreadCache cache;
  return cache;
}

void PoisonBuffer(std::vector<float>& buffer) {
  const float nan = std::numeric_limits<float>::signaling_NaN();
  for (float& v : buffer) v = nan;
}

}  // namespace

bool BufferPoolEnabled() {
  return PoolEnabledFlag().load(std::memory_order_relaxed);
}

void SetBufferPoolEnabled(bool enabled) {
  PoolEnabledFlag().store(enabled, std::memory_order_relaxed);
  if (!enabled) TrimBufferPool();
}

bool PoisonUninitEnabled() {
  return PoisonFlag().load(std::memory_order_relaxed);
}

void SetPoisonUninitEnabled(bool enabled) {
  PoisonFlag().store(enabled, std::memory_order_relaxed);
}

int64_t BufferPoolCapBytes() {
  return PoolCapFlag().load(std::memory_order_relaxed);
}

void SetBufferPoolCapBytes(int64_t cap_bytes) {
  PoolCapFlag().store(cap_bytes < 0 ? 0 : cap_bytes,
                      std::memory_order_relaxed);
}

std::vector<float> AcquireBuffer(size_t num_elements, BufferFill fill) {
  ThreadCache& cache = LocalCache();
  StatBlock& stats = *cache.stats;
  const int64_t bytes = static_cast<int64_t>(num_elements * sizeof(float));
  Bump(stats.bytes_requested, static_cast<uint64_t>(bytes));
  Bump<int64_t>(stats.outstanding, 1);
  NoteLiveDelta(bytes);

  std::vector<float> buffer;
  bool recycled = false;
  if (num_elements > 0 && BufferPoolEnabled()) {
    recycled = cache.Pop(num_elements, &buffer) ||
               Global().Pop(num_elements, &buffer);
  }
  if (recycled) {
    Bump<uint64_t>(stats.hits, 1);
    Bump<int64_t>(stats.pooled_buffers, -1);
    Bump(stats.pooled_bytes, -bytes);
    if (fill == BufferFill::kZero) {
      std::fill(buffer.begin(), buffer.end(), 0.0f);
    } else if (PoisonUninitEnabled()) {
      PoisonBuffer(buffer);
    }
    // kUninit on a recycled buffer: the zero-init elision — contents are
    // stale and the caller overwrites every element.
  } else {
    Bump<uint64_t>(stats.misses, 1);
    buffer.assign(num_elements, 0.0f);  // fresh storage is always zeroed
    if (fill == BufferFill::kUninit && PoisonUninitEnabled()) {
      PoisonBuffer(buffer);
    }
  }
  return buffer;
}

void ReleaseBuffer(std::vector<float>&& buffer) {
  if (buffer.empty()) return;
  ThreadCache& cache = LocalCache();
  StatBlock& stats = *cache.stats;
  const int64_t bytes = static_cast<int64_t>(buffer.size() * sizeof(float));
  Bump<uint64_t>(stats.releases, 1);
  Bump<int64_t>(stats.outstanding, -1);
  NoteLiveDelta(-bytes);
  if (!BufferPoolEnabled()) {
    std::vector<float>().swap(buffer);  // free now, don't pool
    return;
  }
  Bump<int64_t>(stats.pooled_buffers, 1);
  Bump(stats.pooled_bytes, bytes);
  std::vector<float> owned = std::move(buffer);
  buffer.clear();
  if (!cache.TryPush(std::move(owned))) {
    auto [dropped_buffers, dropped_bytes] = Global().Push(std::move(owned));
    Bump(stats.pooled_buffers, -dropped_buffers);
    Bump(stats.pooled_bytes, -dropped_bytes);
  }
}

void NoteAdoptedBuffer(size_t num_elements) {
  if (num_elements == 0) return;
  StatBlock& stats = *LocalCache().stats;
  Bump<uint64_t>(stats.adoptions, 1);
  Bump<int64_t>(stats.outstanding, 1);
  NoteLiveDelta(static_cast<int64_t>(num_elements * sizeof(float)));
}

BufferPoolStats PoolSnapshot() {
  BufferPoolStats out;
  int64_t outstanding = 0;
  int64_t pooled_buffers = 0;
  int64_t pooled_bytes = 0;
  {
    StatRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const auto& block : registry.blocks) {
      out.hits += block->hits.load(std::memory_order_relaxed);
      out.misses += block->misses.load(std::memory_order_relaxed);
      out.releases += block->releases.load(std::memory_order_relaxed);
      out.adoptions += block->adoptions.load(std::memory_order_relaxed);
      out.bytes_requested +=
          block->bytes_requested.load(std::memory_order_relaxed);
      outstanding += block->outstanding.load(std::memory_order_relaxed);
      pooled_buffers += block->pooled_buffers.load(std::memory_order_relaxed);
      pooled_bytes += block->pooled_bytes.load(std::memory_order_relaxed);
    }
  }
  out.acquires = out.hits + out.misses;
  auto clamp = [](int64_t v) {
    return v > 0 ? static_cast<uint64_t>(v) : uint64_t{0};
  };
  out.live_bytes = clamp(LiveBytes().load(std::memory_order_relaxed));
  out.peak_live_bytes = clamp(PeakLiveBytes().load(std::memory_order_relaxed));
  out.outstanding_buffers = clamp(outstanding);
  out.pooled_buffers = clamp(pooled_buffers);
  out.pooled_bytes = clamp(pooled_bytes);
  return out;
}

void ResetPoolStats() {
  // Requires quiescent writers (no concurrent tensor ops), like any stats
  // read intended to be exact. live/pooled/outstanding reflect real buffer
  // state, so a reset re-bases the peak at the current live level instead
  // of zeroing the gauges.
  StatRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& block : registry.blocks) {
    block->hits.store(0, std::memory_order_relaxed);
    block->misses.store(0, std::memory_order_relaxed);
    block->releases.store(0, std::memory_order_relaxed);
    block->adoptions.store(0, std::memory_order_relaxed);
    block->bytes_requested.store(0, std::memory_order_relaxed);
  }
  PeakLiveBytes().store(LiveBytes().load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

void TrimBufferPool() {
  auto [global_buffers, global_bytes] = Global().Trim();
  ThreadCache& cache = LocalCache();
  auto [local_buffers, local_bytes] = cache.Trim();
  StatBlock& stats = *cache.stats;
  Bump(stats.pooled_buffers, -(global_buffers + local_buffers));
  Bump(stats.pooled_bytes, -(global_bytes + local_bytes));
}

std::string BufferPoolStats::ToString() const {
  return StrFormat(
      "acquires=%llu hits=%llu (%.1f%%) misses=%llu releases=%llu "
      "adoptions=%llu requested=%.2f MB live=%.2f MB peak=%.2f MB "
      "pooled=%.2f MB outstanding=%llu",
      static_cast<unsigned long long>(acquires),
      static_cast<unsigned long long>(hits), 100.0 * HitRate(),
      static_cast<unsigned long long>(misses),
      static_cast<unsigned long long>(releases),
      static_cast<unsigned long long>(adoptions),
      static_cast<double>(bytes_requested) / (1024.0 * 1024.0),
      static_cast<double>(live_bytes) / (1024.0 * 1024.0),
      static_cast<double>(peak_live_bytes) / (1024.0 * 1024.0),
      static_cast<double>(pooled_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(outstanding_buffers));
}

}  // namespace logcl
