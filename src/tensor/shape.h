// Tensor shapes (row-major dense layout).

#ifndef LOGCL_TENSOR_SHAPE_H_
#define LOGCL_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace logcl {

/// Dimension sizes of a dense row-major tensor. Rank 0 denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  /// Number of dimensions (0 for scalars).
  int rank() const { return static_cast<int>(dims_.size()); }

  /// Size of dimension `i` (0 <= i < rank()).
  int64_t dim(int i) const;

  /// Total number of elements (1 for scalars).
  int64_t num_elements() const;

  /// Convenience accessors for the common 2-D case.
  int64_t rows() const { return dim(0); }
  int64_t cols() const { return dim(1); }

  const std::vector<int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// e.g. "[3, 4]".
  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace logcl

#endif  // LOGCL_TENSOR_SHAPE_H_
