#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/stringpiece.h"
#include "tensor/buffer_pool.h"
#include "tensor/jit.h"

namespace logcl {

namespace internal_tensor {

TensorNode::~TensorNode() {
  ReleaseBuffer(std::move(data));
  ReleaseBuffer(std::move(grad));
}

void TensorNode::EnsureGrad() {
  if (grad.size() != data.size()) {
    ReleaseBuffer(std::move(grad));
    grad = AcquireBuffer(data.size(), BufferFill::kZero);
  }
}

float* TensorNode::GradForFullWrite(bool* fresh) {
  if (grad.size() == data.size()) {
    *fresh = false;
    return grad.data();
  }
  // First contribution fully overwrites, so the zero-fill is elided; with
  // LOGCL_POISON_UNINIT=1 the buffer arrives sNaN-poisoned and a kernel
  // that fails the full-write contract is caught downstream.
  ReleaseBuffer(std::move(grad));
  grad = AcquireBuffer(data.size(), BufferFill::kUninit);
  *fresh = true;
  return grad.data();
}

}  // namespace internal_tensor

namespace {
// Thread-local so a NoGradGuard during evaluation on one thread cannot race
// with (or silently disable) tape recording on another.
thread_local bool g_grad_mode = true;
std::atomic<uint64_t> g_sequence{0};

Tensor::NodePtr NewNode(const Shape& shape, std::vector<float> data,
                        bool requires_grad) {
  LOGCL_CHECK_EQ(static_cast<int64_t>(data.size()), shape.num_elements());
  auto node = std::make_shared<internal_tensor::TensorNode>();
  node->shape = shape;
  node->data = std::move(data);
  node->requires_grad = requires_grad;
  node->sequence = g_sequence.fetch_add(1, std::memory_order_relaxed);
  return node;
}
}  // namespace

bool GradModeEnabled() { return g_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Tensor(NewNode(
      shape,
      AcquireBuffer(static_cast<size_t>(shape.num_elements()),
                    BufferFill::kZero),
      requires_grad));
}

Tensor Tensor::Uninitialized(const Shape& shape, bool requires_grad) {
  return Tensor(NewNode(
      shape,
      AcquireBuffer(static_cast<size_t>(shape.num_elements()),
                    BufferFill::kUninit),
      requires_grad));
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  std::vector<float> values = AcquireBuffer(
      static_cast<size_t>(shape.num_elements()), BufferFill::kUninit);
  std::fill(values.begin(), values.end(), value);
  return Tensor(NewNode(shape, std::move(values), requires_grad));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  // Caller-allocated storage becomes pool-tracked on adoption so the live
  // counters balance when ~TensorNode releases it.
  NoteAdoptedBuffer(values.size());
  return Tensor(NewNode(shape, std::move(values), requires_grad));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  std::vector<float> values = AcquireBuffer(1, BufferFill::kUninit);
  values[0] = value;
  return Tensor(NewNode(Shape{}, std::move(values), requires_grad));
}

Tensor Tensor::XavierUniform(const Shape& shape, Rng* rng, bool requires_grad) {
  LOGCL_CHECK(rng != nullptr);
  LOGCL_CHECK_GE(shape.rank(), 1);
  int64_t fan_in = shape.rank() >= 2 ? shape.dim(0) : shape.num_elements();
  int64_t fan_out = shape.rank() >= 2 ? shape.dim(1) : shape.num_elements();
  double bound = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  std::vector<float> values = AcquireBuffer(
      static_cast<size_t>(shape.num_elements()), BufferFill::kUninit);
  for (auto& v : values) v = static_cast<float>(rng->Uniform(-bound, bound));
  return Tensor(NewNode(shape, std::move(values), requires_grad));
}

Tensor Tensor::RandomNormal(const Shape& shape, float stddev, Rng* rng,
                            bool requires_grad) {
  LOGCL_CHECK(rng != nullptr);
  std::vector<float> values = AcquireBuffer(
      static_cast<size_t>(shape.num_elements()), BufferFill::kUninit);
  for (auto& v : values) v = static_cast<float>(rng->Normal(0.0, stddev));
  return Tensor(NewNode(shape, std::move(values), requires_grad));
}

const Shape& Tensor::shape() const {
  LOGCL_CHECK(defined());
  return node_->shape;
}

const std::vector<float>& Tensor::data() const {
  LOGCL_CHECK(defined());
  return node_->data;
}

std::vector<float>& Tensor::mutable_data() {
  LOGCL_CHECK(defined());
  return node_->data;
}

bool Tensor::requires_grad() const {
  LOGCL_CHECK(defined());
  return node_->requires_grad;
}

void Tensor::set_requires_grad(bool value) {
  LOGCL_CHECK(defined());
  node_->requires_grad = value;
}

const std::vector<float>& Tensor::grad() const {
  LOGCL_CHECK(defined());
  const_cast<internal_tensor::TensorNode*>(node_.get())->EnsureGrad();
  return node_->grad;
}

std::vector<float>& Tensor::mutable_grad() {
  LOGCL_CHECK(defined());
  node_->EnsureGrad();
  return node_->grad;
}

void Tensor::ZeroGrad() {
  LOGCL_CHECK(defined());
  if (node_->grad.size() != node_->data.size()) {
    node_->EnsureGrad();  // acquires an already-zeroed buffer
    return;
  }
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

float Tensor::at(int64_t index) const {
  LOGCL_CHECK(defined());
  LOGCL_CHECK_GE(index, 0);
  LOGCL_CHECK_LT(index, static_cast<int64_t>(node_->data.size()));
  return node_->data[static_cast<size_t>(index)];
}

float Tensor::at(int64_t row, int64_t col) const {
  LOGCL_CHECK(defined());
  LOGCL_CHECK_EQ(shape().rank(), 2);
  LOGCL_CHECK_GE(row, 0);
  LOGCL_CHECK_LT(row, shape().rows());
  LOGCL_CHECK_GE(col, 0);
  LOGCL_CHECK_LT(col, shape().cols());
  return node_->data[static_cast<size_t>(row * shape().cols() + col)];
}

Tensor Tensor::Clone() const {
  LOGCL_CHECK(defined());
  std::vector<float> values =
      AcquireBuffer(node_->data.size(), BufferFill::kUninit);
  std::copy(node_->data.begin(), node_->data.end(), values.begin());
  return Tensor(NewNode(node_->shape, std::move(values),
                        /*requires_grad=*/false));
}

std::string Tensor::ToString(int max_values) const {
  if (!defined()) return "Tensor(undefined)";
  std::string out = "Tensor" + shape().ToString() + " {";
  int64_t n = std::min<int64_t>(num_elements(), max_values);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.4g", node_->data[static_cast<size_t>(i)]);
  }
  if (n < num_elements()) out += ", ...";
  out += "}";
  return out;
}

Tensor Tensor::MakeOpOutput(
    const Shape& shape, std::vector<float> data, std::vector<Tensor> parents,
    std::function<void(internal_tensor::TensorNode&)> backward_fn) {
  bool any_grad = false;
  if (GradModeEnabled()) {
    for (const Tensor& p : parents) {
      if (p.defined() && p.requires_grad()) {
        any_grad = true;
        break;
      }
    }
  }
  Tensor out(NewNode(shape, std::move(data), any_grad));
  // JIT capture audit: every op-output node is counted so a trace missing
  // hooks for some op (MatMul, reductions, RNG ops) fails compilation
  // instead of replaying an incomplete plan (tensor/jit.h).
  jit::internal::NoteNodeCreated();
  if (any_grad) {
    auto& node = *out.node_;
    node.parents.reserve(parents.size());
    for (const Tensor& p : parents) node.parents.push_back(p.node());
    node.backward_fn = std::move(backward_fn);
  }
  return out;
}

}  // namespace logcl
