// Explicitly vectorized CPU kernels behind one-time runtime dispatch.
//
// Every fp32 entry point here is implemented twice (or three times): a
// portable scalar variant and an AVX2 variant on x86-64 (NEON on aarch64).
// The active variant is chosen once per process from CPUID (and the
// LOGCL_SIMD env toggle) and cached in a kernel table; callers pay one
// indirect call per kernel invocation, which the row/tile granularity of the
// call sites amortises away.
//
// Bitwise-parity contract (fp32): for identical inputs, the SIMD and scalar
// variants of every fp32 kernel return bit-identical outputs. This is the
// property the LOGCL_SIMD=0 escape hatch and the Simd*Parity tests pin. It
// holds because vector lanes only ever carry *independent* output elements:
//  - elementwise kernels round exactly like the scalar loop (one IEEE op per
//    element, no FMA — simd.cc is compiled with -ffp-contract=off),
//  - the matmul kernels keep one accumulator per output element sweeping the
//    reduction dimension in ascending order (lanes span output columns, so
//    each element's accumulation chain is the scalar chain),
//  - the NT (A * B^T) kernel transposes B into scratch and runs the NN
//    kernel: per output element that is the identical product sequence in
//    the identical order (the trick ops.cc's fused backward already relies
//    on, now vectorised),
//  - reductions that are not exact under reordering (e.g. float dot
//    products) are simply not offered as fp32 SIMD kernels.
// Integer kernels (the int8 dot product) are exact under any summation
// order, so they vectorise freely.
//
// Threading: kernels here are serial. Callers shard work with ParallelFor
// and invoke kernels per shard, so the existing thread-count-invariance
// contracts are untouched.

#ifndef LOGCL_TENSOR_SIMD_H_
#define LOGCL_TENSOR_SIMD_H_

#include <cstdint>

namespace logcl {
namespace simd {

/// Instruction set the dispatcher selected at process start.
enum class SimdIsa { kScalar, kAvx2, kNeon };

/// The ISA the kernel table would use when SIMD is enabled (CPUID probe;
/// never affected by LOGCL_SIMD).
SimdIsa DetectedIsa();

/// The ISA actually in use: DetectedIsa() when enabled, kScalar otherwise.
SimdIsa ActiveIsa();

const char* IsaName(SimdIsa isa);

/// True unless LOGCL_SIMD=0/false/off (or SetSimdEnabled(false)).
bool SimdEnabled();
/// Test/bench override of the env default. Swaps the whole kernel table, so
/// do not call concurrently with running kernels.
void SetSimdEnabled(bool enabled);

// --- fp32 elementwise kernels (bitwise-equal across variants) --------------

/// out[i] = a[i] + b[i]
void Add(const float* a, const float* b, float* out, int64_t n);
/// out[i] = a[i] - b[i]
void Sub(const float* a, const float* b, float* out, int64_t n);
/// out[i] = a[i] * b[i]
void Mul(const float* a, const float* b, float* out, int64_t n);
/// y[i] += x[i]
void Accumulate(const float* x, float* y, int64_t n);
/// y[i] += a[i] * b[i]  (product rounded, then accumulated — two IEEE ops,
/// exactly like the scalar backward loops; never fused)
void MulAccumulate(const float* a, const float* b, float* y, int64_t n);
/// y[i] += s * x[i]  (same two-op rounding contract)
void Axpy(float s, const float* x, float* y, int64_t n);
/// out[i] = s * x[i]
void Scale(const float* x, float s, float* out, int64_t n);
/// out[i] = x[i] + s
void AddScalar(const float* x, float s, float* out, int64_t n);
/// out[i] = max(x[i], 0)
void Relu(const float* x, float* out, int64_t n);
/// gx[i] += x[i] > 0 ? g[i] : +0.0f
void ReluBackward(const float* x, const float* g, float* gx, int64_t n);

// Fresh-grad variants: same arithmetic as their accumulate counterparts
// against an implicit zeroed destination. Each element is WRITTEN as
// `0.0f + contribution`, which is bitwise-equal to zero-fill followed by
// the accumulate kernel (including the -0.0 -> +0.0 normalisation that
// adding into a zeroed buffer performs) without reading the destination.
// Used for the first, full-coverage contribution into a kUninit grad
// buffer (TensorNode::GradForFullWrite).
/// y[i] = 0 + x[i]
void AccumulateFresh(const float* x, float* y, int64_t n);
/// y[i] = 0 + a[i] * b[i]
void MulAccumulateFresh(const float* a, const float* b, float* y, int64_t n);
/// y[i] = 0 + s * x[i]
void AxpyFresh(float s, const float* x, float* y, int64_t n);
/// gx[i] = 0 + (x[i] > 0 ? g[i] : +0.0f)
void ReluBackwardFresh(const float* x, const float* g, float* gx, int64_t n);
/// max over x[0..n); -inf for n == 0. Exact under lane reordering for the
/// finite inputs the softmax path feeds it.
float RowMax(const float* x, int64_t n);

// --- fp32 matmul kernels (accumulate into C) -------------------------------
//
// Tile geometry shared by every variant (and by ops.cc's fused
// message-passing tiles): kTileRows x kTileCols output tiles swept by an
// axpy over the reduction dimension.
inline constexpr int64_t kTileRows = 4;
inline constexpr int64_t kTileCols = 64;
/// Do not split a matmul into shards below this many multiply-accumulates.
inline constexpr int64_t kMatMulShardFlops = int64_t{1} << 15;
/// Row grain so one shard performs at least kMatMulShardFlops MACs, where
/// each output row costs `flops_per_row` MACs.
int64_t MatMulRowGrain(int64_t flops_per_row);

/// C(m x n) += A(m x k) * B(k x n), output rows [r0, r1) only.
void MatMulRowsNN(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, int64_t r0, int64_t r1);
/// C(k x n) += A(m x k)^T * B(m x n), output rows [r0, r1) only.
void MatMulRowsTN(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, int64_t r0, int64_t r1);

/// C(m x n) += A(m x k) * B(k x n), sharded internally with ParallelFor.
void MatMulAccumNN(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n);
/// C(m x k) += A(m x n) * B(k x n)^T. The SIMD path transposes B into pooled
/// scratch once and runs the NN kernel (bitwise-equal per element); the
/// scalar path keeps the direct dot-product tile. Sharded internally.
void MatMulAccumNT(const float* a, const float* b, float* c, int64_t m,
                   int64_t n, int64_t k);
/// C(k x n) += A(m x k)^T * B(m x n). Sharded internally.
void MatMulAccumTN(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n);

/// Small-tile matmul into caller-owned accumulators:
///   acc[r * acc_stride + j] = sum_l a[r * lda + l] * b[l * ldb + j]
/// for r in [0, rows), j in [0, cols), l ascending with one accumulator per
/// element (zero-initialised here). `cols` must be <= kTileCols. This is the
/// inner tile of the fused message-passing kernels.
void MatMulTile(const float* a, int64_t lda, const float* b, int64_t ldb,
                float* acc, int64_t acc_stride, int64_t rows, int64_t k,
                int64_t cols);

// --- reduced-precision kernels (serving; no bitwise contract) --------------

/// Exact int32 dot product of two int8 vectors (integer addition is
/// associative, so every variant returns the same value).
int32_t DotI8(const int8_t* a, const int8_t* b, int64_t n);

/// fp32 dot of a bf16 row (high 16 bits of each float) against an fp32
/// query. Lane-partial accumulation; NOT bitwise-stable across variants —
/// callers gate it with rank-correlation tests, not equality.
float DotBf16(const uint16_t* a, const float* q, int64_t n);

/// Batched int8 scoring: out[e] = qscale * scales[e] * dot_i8(m row e, q)
/// for e in [0, rows), rows of length `dim`. One dispatch for the whole
/// candidate matrix — at serving dims each dot is a handful of vector ops,
/// so a per-row indirect call would dominate. Same exactness as DotI8 (the
/// float scaling is two IEEE multiplies per row in every variant).
void ScoreRowsI8(const int8_t* m, const float* scales, const int8_t* q,
                 float qscale, int64_t rows, int64_t dim, float* out);

/// Batched bf16 scoring: out[e] = DotBf16(m row e, q). Same statistical
/// (non-bitwise) contract as DotBf16.
void ScoreRowsBf16(const uint16_t* m, const float* q, int64_t rows,
                   int64_t dim, float* out);

}  // namespace simd
}  // namespace logcl

#endif  // LOGCL_TENSOR_SIMD_H_
