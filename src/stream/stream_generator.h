// StreamGenerator: ICEWS/GDELT-shaped fact streams at real-dataset scale.
//
// The offline synthetic generator (synth/generator.h) materialises a whole
// dataset up front — fine at 10^4 facts, hopeless at the ~1.7M facts of an
// ICEWS05-15 or GDELT run. The stream generator instead produces one
// timestamped snapshot at a time with O(reservoir) memory, shaped by the two
// statistics the paper's analysis (Table II) leans on:
//
//  - *power-law entity reuse*: subjects/objects follow a Zipf rank
//    distribution (synth/generator.h BuildZipfCdf), so a small head of
//    entities carries most events, as in real event dumps;
//  - *history repetition*: a configurable fraction of each snapshot's facts
//    re-emit a previously seen (s, r, o) at the new timestamp — the
//    global-history signal LogCL's candidate sets exploit. Previously seen
//    triples live in a bounded reservoir (uniform reservoir sampling), so
//    memory stays flat no matter how long the stream runs.
//
// The generator is deterministic per seed: the same config replays the same
// stream, which is what lets drift tests re-evaluate offline.

#ifndef LOGCL_STREAM_STREAM_GENERATOR_H_
#define LOGCL_STREAM_STREAM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tkg/dataset.h"
#include "tkg/quadruple.h"

namespace logcl {

struct StreamConfig {
  uint64_t seed = 1;

  // ICEWS14-ish id-space defaults; bench_stream scales these up.
  int64_t num_entities = 7000;
  int64_t num_relations = 230;

  /// Facts arriving per timestamp (before in-snapshot dedupe).
  int64_t facts_per_snapshot = 500;

  /// Zipf exponent of the entity rank distribution (> 0; ~1.1 matches the
  /// heavy head of ICEWS-style dumps).
  double entity_zipf = 1.1;

  /// Target fraction of arrivals that repeat an already-seen (s, r, o) at
  /// the new timestamp. The paper's Table II reports 60-90% of test facts
  /// having historical support on the real datasets.
  double history_repeat_rate = 0.5;

  /// Bound on the seen-triple reservoir (uniform sample of the stream's
  /// distinct emissions). Memory is O(this), independent of stream length.
  int64_t repeat_reservoir = 100000;

  /// Snapshots materialised by WarmupDataset() for offline pretraining
  /// before the stream goes live.
  int64_t warmup_timestamps = 24;
};

class StreamGenerator {
 public:
  explicit StreamGenerator(StreamConfig config);

  /// The facts of the next timestamp (deduped within the snapshot, in
  /// generation order). Advances the stream clock by one.
  std::vector<Quadruple> NextSnapshot();

  /// Timestamp NextSnapshot() will emit at.
  int64_t next_time() const { return next_time_; }

  /// Runs the first config.warmup_timestamps snapshots and packages them as
  /// a TkgDataset (chronological train/valid split, last warmup snapshot as
  /// the test split) for offline pretraining. Call once, before streaming;
  /// the live stream continues at warmup_timestamps.
  TkgDataset WarmupDataset();

  /// Facts emitted so far and how many of them repeated an already-seen
  /// triple — the measured (not configured) history-repetition rate.
  uint64_t facts_emitted() const { return facts_emitted_; }
  double measured_repeat_rate() const {
    return facts_emitted_ == 0
               ? 0.0
               : static_cast<double>(repeats_emitted_) /
                     static_cast<double>(facts_emitted_);
  }

  const StreamConfig& config() const { return config_; }

 private:
  struct Triple {
    int64_t subject;
    int64_t relation;
    int64_t object;
  };

  Triple FreshTriple();
  void OfferToReservoir(const Triple& triple);

  StreamConfig config_;
  Rng rng_;
  std::vector<double> zipf_cdf_;
  std::vector<Triple> reservoir_;
  uint64_t reservoir_offered_ = 0;  // distinct triples offered so far
  int64_t next_time_ = 0;
  uint64_t facts_emitted_ = 0;
  uint64_t repeats_emitted_ = 0;
};

}  // namespace logcl

#endif  // LOGCL_STREAM_STREAM_GENERATOR_H_
