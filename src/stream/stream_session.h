// StreamSession: the unified streaming continual-learning API.
//
// A session owns the whole serve-while-learning loop around one LogCL model:
//
//   queries  ──► InferenceEngine (micro-batching + admission control)
//   facts(t) ──► IngestSnapshot:
//                  1. staleness eval — score the arrivals on the CURRENT
//                     snapshot (horizon t, which has not seen t's facts);
//                  2. Pause() the engine (quiesce in-flight scoring);
//                  3. ExtendHistory — the model's global history index
//                     absorbs the arrivals in place;
//                  4. sparse fine-tune — TrainOnStreamFacts over the
//                     engine's own evolution window, stepping only the
//                     parameter rows the batch's gradients touch
//                     (tensor/sparse_adam.h), then CatchUp so the weights
//                     handed back to serving equal the dense-Adam state;
//                  5. dirty-row writeback — rows the optimizer changed are
//                     copied into the mmap checkpoint (when configured), so
//                     persistence cost scales with the update, not the
//                     model;
//                  6. Resume() + Advance — the engine publishes the
//                     copy-on-write successor snapshot at horizon t+1,
//                     rebuilt from the fine-tuned weights;
//                  7. freshness eval — the SAME arrivals re-score on the
//                     new snapshot; (stale, fresh) MRR feeds the rolling
//                     DriftTracker (eval/drift.h).
//
// Query traffic keeps flowing for the entire ingest except the fine-tune
// span (steps 2-6), during which submissions still enqueue (and still shed
// on queue depth) but do not score — weights are mutating. The caller
// interleaves Score/TopK/Submit with IngestSnapshot from any threads;
// IngestSnapshot itself must be called from one thread at a time (one
// logical fact stream).

#ifndef LOGCL_STREAM_STREAM_SESSION_H_
#define LOGCL_STREAM_STREAM_SESSION_H_

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/logcl_model.h"
#include "eval/drift.h"
#include "serve/inference_engine.h"
#include "tensor/checkpoint.h"
#include "tensor/sparse_adam.h"
#include "tkg/quadruple.h"

namespace logcl {

struct StreamSessionOptions {
  /// Serving front-end knobs (admission control lives here:
  /// max_queue_depth / admission_deadline_us).
  EngineOptions engine;

  /// Fine-tune optimizer hyperparameters (no gradient clipping runs on the
  /// sparse path).
  AdamOptions adam;

  /// Sparse fine-tune passes over each arrived snapshot (each pass is one
  /// optimizer step).
  int64_t finetune_passes = 1;

  /// Cap on the arrivals used as drift-eval queries per ingest (the first N
  /// arrivals; 0 disables drift evaluation entirely).
  int64_t eval_queries = 128;

  /// Trailing advances covered by the DriftTracker's rolling means.
  int64_t drift_window = 8;

  /// Replay all lazy optimizer rows after each fine-tune so the weights the
  /// successor snapshot is built from are bitwise what dense Adam would
  /// hold. Off trades that equivalence for less per-ingest work (untouched
  /// rows keep their last caught-up value).
  bool catch_up_each_ingest = true;

  /// When non-empty: the session saves a v2 checkpoint here at construction
  /// and writes fine-tuned rows back into it (mmap dirty-row writeback +
  /// flush) after every ingest.
  std::string mmap_checkpoint_path;
};

/// What one IngestSnapshot did.
struct StreamIngestReport {
  int64_t time = 0;          // horizon the facts arrived at
  int64_t arrivals = 0;      // facts ingested
  double finetune_loss = 0;  // mean loss over finetune_passes
  DriftPoint drift;          // count == 0 when drift eval is disabled
  int64_t rows_written = 0;  // dirty rows persisted (0 without a checkpoint)
  double seconds = 0;        // wall time of the whole ingest
  // Wall-time split of `seconds` (drift evals / quiesced fine-tune incl.
  // history extension + writeback / snapshot advance) so regressions in one
  // phase are visible without a profiler.
  double seconds_eval = 0;
  double seconds_finetune = 0;
  double seconds_advance = 0;
  // Serving activity since the previous ingest (engine counter deltas).
  uint64_t served = 0;
  uint64_t shed = 0;

  std::string ToString() const;
};

class StreamSession {
 public:
  /// Builds the serving snapshot at `start_time` and starts the engine. The
  /// model must outlive the session and must not be trained or mutated
  /// elsewhere while the session lives — the session is the model's only
  /// writer (fine-tune under Pause()).
  StreamSession(LogClModel* model, int64_t start_time,
                StreamSessionOptions options = {});

  /// Admission-controlled query entry points (forwarders to the engine; see
  /// InferenceEngine for the rejection taxonomy).
  Result<std::vector<float>> Score(const ServeQuery& query) {
    return engine_.TryScore(query);
  }
  Result<std::vector<std::pair<int64_t, float>>> TopK(const ServeQuery& query,
                                                      int64_t k) {
    return engine_.TryTopK(query, k);
  }
  Result<std::future<InferenceEngine::EngineResponse>> Submit(
      const ServeQuery& query, int64_t k) {
    return engine_.Submit(query, k);
  }

  /// Ingests the completed horizon's facts (all at time()): staleness eval,
  /// quiesced sparse fine-tune, dirty-row persistence, snapshot advance,
  /// freshness eval. Serial with itself; concurrent with queries.
  StreamIngestReport IngestSnapshot(const std::vector<Quadruple>& facts);

  /// The horizon queries are currently answered at (facts for exactly this
  /// timestamp are what IngestSnapshot expects next).
  int64_t time() const { return engine_.time(); }

  InferenceEngine& engine() { return engine_; }
  SparseAdamOptimizer& optimizer() { return optimizer_; }
  const DriftTracker& drift() const { return drift_; }

 private:
  /// Scores `facts` as object-prediction queries on `snapshot`, returning
  /// one row per fact.
  static std::vector<std::vector<float>> ScoreFacts(
      const EngineSnapshot& snapshot, const std::vector<Quadruple>& facts);

  LogClModel* model_;
  StreamSessionOptions options_;
  SparseAdamOptimizer optimizer_;
  InferenceEngine engine_;
  DriftTracker drift_;
  std::optional<checkpoint::MmapCheckpoint> ckpt_;
  EngineStats last_stats_;  // for per-ingest serving deltas
};

}  // namespace logcl

#endif  // LOGCL_STREAM_STREAM_SESSION_H_
