#include "stream/stream_session.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/observability.h"

namespace logcl {

std::string StreamIngestReport::ToString() const {
  std::ostringstream os;
  os << "ingest[t=" << time << "] arrivals=" << arrivals
     << " loss=" << finetune_loss;
  if (drift.count > 0) {
    os << " mrr_stale=" << drift.mrr_stale << " mrr_fresh=" << drift.mrr_fresh;
  }
  os << " rows_written=" << rows_written << " served=" << served
     << " shed=" << shed << " seconds=" << seconds;
  return os.str();
}

StreamSession::StreamSession(LogClModel* model, int64_t start_time,
                             StreamSessionOptions options)
    : model_(model),
      options_(std::move(options)),
      optimizer_(model->Parameters(), options_.adam),
      engine_(model, start_time, options_.engine),
      drift_(options_.drift_window) {
  LOGCL_CHECK_GT(options_.finetune_passes, 0);
  if (!options_.mmap_checkpoint_path.empty()) {
    Status saved =
        checkpoint::Save(model_->Parameters(), options_.mmap_checkpoint_path);
    LOGCL_CHECK(saved.ok()) << saved.ToString();
    Result<checkpoint::MmapCheckpoint> opened =
        checkpoint::Open(options_.mmap_checkpoint_path);
    LOGCL_CHECK(opened.ok()) << opened.status().ToString();
    ckpt_.emplace(std::move(opened).value());
  }
}

std::vector<std::vector<float>> StreamSession::ScoreFacts(
    const EngineSnapshot& snapshot, const std::vector<Quadruple>& facts) {
  std::vector<ServeQuery> queries;
  queries.reserve(facts.size());
  for (const Quadruple& q : facts) {
    queries.push_back(ServeQuery{q.subject, q.relation});
  }
  Tensor scores = snapshot.ScoreBatch(queries);
  int64_t cols = scores.shape().cols();
  std::vector<std::vector<float>> rows(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const float* begin = scores.data().data() + static_cast<int64_t>(i) * cols;
    rows[i].assign(begin, begin + cols);
  }
  return rows;
}

StreamIngestReport StreamSession::IngestSnapshot(
    const std::vector<Quadruple>& facts) {
  uint64_t start = MonotonicNowNs();
  StreamIngestReport report;
  report.time = time();
  report.arrivals = static_cast<int64_t>(facts.size());
  for (const Quadruple& q : facts) {
    LOGCL_CHECK_EQ(q.time, report.time)
        << "IngestSnapshot facts must all sit at the serving horizon";
  }

  // The drift-eval batch: the first eval_queries arrivals, scored against
  // the stale snapshot before anything learns about `time`.
  std::vector<Quadruple> eval_batch;
  if (options_.eval_queries > 0 && !facts.empty()) {
    size_t n = std::min<size_t>(facts.size(),
                                static_cast<size_t>(options_.eval_queries));
    eval_batch.assign(facts.begin(), facts.begin() + n);
  }
  std::shared_ptr<const EngineSnapshot> stale = engine_.snapshot();
  EvalResult stale_eval;
  if (!eval_batch.empty()) {
    uint64_t t0 = MonotonicNowNs();
    stale_eval = EvalScoredFacts(ScoreFacts(*stale, eval_batch), eval_batch);
    report.seconds_eval += static_cast<double>(MonotonicNowNs() - t0) * 1e-9;
  }

  // Quiesced fine-tune: the engine holds scoring while weights mutate;
  // submissions keep enqueuing (and shedding on depth) meanwhile.
  engine_.Pause();
  uint64_t finetune_start = MonotonicNowNs();
  model_->ExtendHistory(facts);
  if (!facts.empty()) {
    std::vector<const SnapshotGraph*> graphs;
    std::vector<int64_t> times;
    graphs.reserve(stale->window().size());
    times.reserve(stale->window().size());
    for (const auto& [t, graph] : stale->window()) {
      times.push_back(t);
      graphs.push_back(graph.get());
    }
    double loss_sum = 0.0;
    for (int64_t pass = 0; pass < options_.finetune_passes; ++pass) {
      loss_sum = loss_sum + model_->TrainOnStreamFacts(facts, graphs, times,
                                                       report.time,
                                                       &optimizer_);
    }
    report.finetune_loss =
        loss_sum / static_cast<double>(options_.finetune_passes);
  }
  if (options_.catch_up_each_ingest) optimizer_.CatchUp();
  std::vector<std::vector<int64_t>> dirty = optimizer_.DrainDirtyRows();
  if (ckpt_.has_value()) {
    const std::vector<Tensor>& params = optimizer_.parameters();
    for (size_t i = 0; i < params.size(); ++i) {
      if (dirty[i].empty()) continue;
      Status wrote = ckpt_->WritebackRows(i, params[i], dirty[i]);
      LOGCL_CHECK(wrote.ok()) << wrote.ToString();
      report.rows_written += static_cast<int64_t>(dirty[i].size());
    }
    Status flushed = ckpt_->Flush();
    LOGCL_CHECK(flushed.ok()) << flushed.ToString();
  }
  report.seconds_finetune =
      static_cast<double>(MonotonicNowNs() - finetune_start) * 1e-9;
  engine_.Resume();

  // Publish the successor snapshot (horizon time+1, rebuilt from the
  // fine-tuned weights), then re-score the same batch on it.
  uint64_t advance_start = MonotonicNowNs();
  engine_.Advance(facts);
  report.seconds_advance =
      static_cast<double>(MonotonicNowNs() - advance_start) * 1e-9;
  if (!eval_batch.empty()) {
    uint64_t t0 = MonotonicNowNs();
    EvalResult fresh_eval = EvalScoredFacts(
        ScoreFacts(*engine_.snapshot(), eval_batch), eval_batch);
    report.seconds_eval += static_cast<double>(MonotonicNowNs() - t0) * 1e-9;
    report.drift = DriftPoint{report.time, stale_eval.mrr, fresh_eval.mrr,
                              static_cast<int64_t>(eval_batch.size())};
    drift_.Add(report.drift);
  }

  EngineStats now = engine_.Snapshot();
  report.served = now.requests - last_stats_.requests;
  report.shed = now.shed - last_stats_.shed;
  last_stats_ = now;
  report.seconds = static_cast<double>(MonotonicNowNs() - start) * 1e-9;
  return report;
}

}  // namespace logcl
