#include "stream/stream_generator.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "synth/generator.h"

namespace logcl {

StreamGenerator::StreamGenerator(StreamConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  LOGCL_CHECK_GT(config_.num_entities, 1);
  LOGCL_CHECK_GT(config_.num_relations, 0);
  LOGCL_CHECK_GT(config_.facts_per_snapshot, 0);
  LOGCL_CHECK_GT(config_.entity_zipf, 0.0);
  LOGCL_CHECK_GE(config_.history_repeat_rate, 0.0);
  LOGCL_CHECK_LE(config_.history_repeat_rate, 1.0);
  LOGCL_CHECK_GT(config_.repeat_reservoir, 0);
  LOGCL_CHECK_GE(config_.warmup_timestamps, 3);
  zipf_cdf_ = BuildZipfCdf(config_.num_entities, config_.entity_zipf);
  reservoir_.reserve(static_cast<size_t>(
      std::min<int64_t>(config_.repeat_reservoir, 1 << 20)));
}

StreamGenerator::Triple StreamGenerator::FreshTriple() {
  auto sample_entity = [this]() {
    double u = rng_.Uniform();
    auto it = std::upper_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    return std::min<int64_t>(it - zipf_cdf_.begin(),
                             config_.num_entities - 1);
  };
  Triple t;
  t.subject = sample_entity();
  t.relation = static_cast<int64_t>(
      rng_.UniformInt(static_cast<uint64_t>(config_.num_relations)));
  do {
    t.object = sample_entity();
  } while (t.object == t.subject);
  return t;
}

void StreamGenerator::OfferToReservoir(const Triple& triple) {
  ++reservoir_offered_;
  if (static_cast<int64_t>(reservoir_.size()) < config_.repeat_reservoir) {
    reservoir_.push_back(triple);
    return;
  }
  // Uniform reservoir sampling: the new triple replaces a random slot with
  // probability capacity / offered, so every offered triple is equally
  // likely to be resident.
  uint64_t slot = rng_.UniformInt(reservoir_offered_);
  if (slot < reservoir_.size()) {
    reservoir_[static_cast<size_t>(slot)] = triple;
  }
}

std::vector<Quadruple> StreamGenerator::NextSnapshot() {
  int64_t t = next_time_++;
  std::vector<Quadruple> facts;
  facts.reserve(static_cast<size_t>(config_.facts_per_snapshot));
  std::unordered_set<Quadruple, QuadrupleHash> dedupe;
  for (int64_t i = 0; i < config_.facts_per_snapshot; ++i) {
    bool repeat = !reservoir_.empty() &&
                  rng_.Bernoulli(config_.history_repeat_rate);
    Triple triple;
    if (repeat) {
      triple = reservoir_[static_cast<size_t>(
          rng_.UniformInt(static_cast<uint64_t>(reservoir_.size())))];
    } else {
      triple = FreshTriple();
      OfferToReservoir(triple);
    }
    Quadruple q{triple.subject, triple.relation, triple.object, t};
    if (!dedupe.insert(q).second) continue;
    facts.push_back(q);
    ++facts_emitted_;
    if (repeat) ++repeats_emitted_;
  }
  return facts;
}

TkgDataset StreamGenerator::WarmupDataset() {
  LOGCL_CHECK_EQ(next_time_, 0)
      << "WarmupDataset must run before streaming starts";
  int64_t w = config_.warmup_timestamps;
  std::vector<Quadruple> train, valid, test;
  for (int64_t t = 0; t < w; ++t) {
    std::vector<Quadruple> facts = NextSnapshot();
    std::vector<Quadruple>* split =
        t < w - 2 ? &train : (t == w - 2 ? &valid : &test);
    split->insert(split->end(), facts.begin(), facts.end());
  }
  return TkgDataset::FromQuadruples("stream-warmup", config_.num_entities,
                                    config_.num_relations, std::move(train),
                                    std::move(valid), std::move(test));
}

}  // namespace logcl
