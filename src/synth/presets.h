// Paper-dataset-like presets for the synthetic generator.
//
// Each preset mirrors the *relative* character of one benchmark at roughly
// 1-2% scale so the full experiment grid runs on one CPU core:
//   icews14-like   : moderate size, 1-year-like horizon, clean patterns
//   icews18-like   : more entities, denser snapshots, harder
//   icews0515-like : long horizon (many snapshots), large entity set
//   gdelt-like     : very dense, noisy (lowest absolute scores in the paper)

#ifndef LOGCL_SYNTH_PRESETS_H_
#define LOGCL_SYNTH_PRESETS_H_

#include <string>
#include <vector>

#include "synth/generator.h"
#include "tkg/dataset.h"

namespace logcl {

/// The four benchmark stand-ins used by every experiment binary.
enum class PaperDataset {
  kIcews14Like,
  kIcews18Like,
  kIcews0515Like,
  kGdeltLike,
};

/// Display name as used in result tables ("ICEWS14-like", ...).
std::string PaperDatasetName(PaperDataset dataset);

/// Generator preset for a benchmark stand-in.
SynthConfig PresetConfig(PaperDataset dataset);

/// Generates the stand-in dataset (deterministic per preset).
TkgDataset MakePaperDataset(PaperDataset dataset);

/// All four presets in the paper's column order.
std::vector<PaperDataset> AllPaperDatasets();

}  // namespace logcl

#endif  // LOGCL_SYNTH_PRESETS_H_
