// Synthetic TKG generator.
//
// The paper evaluates on ICEWS14/18/05-15 and GDELT, which are licensed
// event dumps not redistributable here. The generator manufactures datasets
// exhibiting the exact pattern families those datasets are known for — and
// that LogCL's two encoders are designed to exploit:
//
//  1. *Recurring facts*  — stable (s, r, o) triples that re-occur at random
//     timestamps (global repetition; what CyGNet's copy mechanism targets).
//  2. *Cyclic facts*     — triples firing with a fixed period and phase
//     ("periodic meetings" in the paper's motivation).
//  3. *Evolving chains*  — scripted storylines: a small library of relation
//     scripts r_0 -> r_1 -> ... -> r_{L-1}; an instance binds a subject and
//     object and emits (s, r_i, o) at consecutive timestamps, so the recent
//     local snapshots predict the next fact (what RE-GCN-style recurrent
//     encoders target).
//  4. *Noise facts*      — uniform random quadruples (dataset hardness).
//
// Splits are chronological 80/10/10 over timestamps, as in RE-GCN/LogCL
// preprocessing.

#ifndef LOGCL_SYNTH_GENERATOR_H_
#define LOGCL_SYNTH_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tkg/dataset.h"

namespace logcl {

/// Knobs for one synthetic dataset.
struct SynthConfig {
  std::string name = "synthetic";
  uint64_t seed = 1;

  int64_t num_entities = 100;
  int64_t num_relations = 10;
  int64_t num_timestamps = 80;

  // Recurring facts (single stable object; favours any frequency model).
  int64_t recurring_pool = 40;    // distinct stable triples
  double recurring_prob = 0.25;   // fire probability per timestamp

  // Alternating recurrences: an (s, r) anchor fires every `gap` steps over a
  // pool of k objects; at each firing the previous object repeats with
  // probability `alternating_stay_prob`, otherwise it switches to another
  // pool member. Global history narrows candidates to the k historical
  // answers; the *most recent* occurrence mostly determines the next one, so
  // temporal models can disambiguate where static frequency models cannot.
  // Gaps larger than the local window make the global encoder matter (the
  // paper's Fig.1 motivation). This is the main separator of Table III.
  int64_t alternating_pool = 80;  // distinct (s, r) anchors
  int64_t alternating_objects_min = 2;
  int64_t alternating_objects_max = 4;
  int64_t alternating_gap_min = 1;
  int64_t alternating_gap_max = 6;
  double alternating_stay_prob = 0.7;

  // Cyclic facts.
  int64_t num_cyclic = 40;        // distinct periodic triples
  int64_t cycle_min = 4;
  int64_t cycle_max = 10;

  // Evolving chains.
  int64_t num_scripts = 6;        // relation-script library size
  int64_t chain_length = 3;       // facts per storyline
  double chains_per_timestamp = 4.0;  // expected new storylines per step

  // Noise.
  double noise_per_timestamp = 4.0;   // expected random facts per step

  // Pattern drift: every recurring / alternating / cyclic instance is only
  // active for `pattern_lifetime` consecutive timestamps (start drawn
  // uniformly, so instances are born and die throughout the horizon,
  // including during the test period). 0 = patterns live forever.
  // Drift is what separates extrapolation models from static ones: a
  // pattern born after the training cut is invisible to a memorised
  // embedding table but fully observable to history-conditioned encoders.
  int64_t pattern_lifetime = 0;

  // Chronological split fractions (test gets the remainder).
  double train_fraction = 0.8;
  double valid_fraction = 0.1;

  // Power-law entity reuse (ICEWS/GDELT-shaped): when > 0, entity draws
  // follow a Zipf(entity_zipf) rank distribution instead of uniform, so a
  // head of entities dominates interactions the way a few states dominate
  // real event dumps. 0 keeps the exact pre-existing uniform draws
  // (bitwise-identical datasets for existing seeds — the RNG call sequence
  // does not change).
  double entity_zipf = 0.0;
};

/// CDF of the Zipf(exponent) rank distribution over `n` items:
/// P(rank k) ∝ 1 / (k+1)^exponent. Shared by the offline generator and the
/// streaming generator (src/stream) so both draw from the same head/tail
/// shape. Sample by upper_bound(cdf, Uniform()).
std::vector<double> BuildZipfCdf(int64_t n, double exponent);

/// Deterministically generates a dataset from `config` (same seed -> same
/// data). Duplicate (s, r, o, t) facts are removed.
TkgDataset GenerateSyntheticTkg(const SynthConfig& config);

}  // namespace logcl

#endif  // LOGCL_SYNTH_GENERATOR_H_
