#include "synth/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "tkg/quadruple.h"

namespace logcl {

namespace {

struct Triple {
  int64_t subject;
  int64_t relation;
  int64_t object;
};

// Entity draw under the configured reuse distribution. The uniform path
// (entity_zipf == 0) keeps the exact historical UniformInt call so old
// seeds reproduce bitwise; the Zipf path consumes one Uniform() instead.
class EntityDist {
 public:
  explicit EntityDist(const SynthConfig& config)
      : num_entities_(config.num_entities) {
    if (config.entity_zipf > 0.0) {
      cdf_ = BuildZipfCdf(config.num_entities, config.entity_zipf);
    }
  }

  int64_t Sample(Rng* rng) const {
    if (cdf_.empty()) {
      return static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(num_entities_)));
    }
    double u = rng->Uniform();
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    int64_t idx = it - cdf_.begin();
    return std::min(idx, num_entities_ - 1);
  }

 private:
  int64_t num_entities_;
  std::vector<double> cdf_;
};

Triple RandomTriple(const SynthConfig& config, const EntityDist& entities,
                    Rng* rng) {
  Triple t;
  t.subject = entities.Sample(rng);
  t.relation = static_cast<int64_t>(rng->UniformInt(
      static_cast<uint64_t>(config.num_relations)));
  do {
    t.object = entities.Sample(rng);
  } while (t.object == t.subject && config.num_entities > 1);
  return t;
}

/// Draws a Poisson count via inversion (rates here are tiny).
int64_t Poisson(double rate, Rng* rng) {
  if (rate <= 0.0) return 0;
  double l = std::exp(-rate);
  double p = 1.0;
  int64_t k = 0;
  do {
    ++k;
    p *= rng->Uniform();
  } while (p > l);
  return k - 1;
}

}  // namespace


namespace {

// Active window [begin, end) for one pattern instance under drift.
struct Lifetime {
  int64_t begin;
  int64_t end;
};

Lifetime DrawLifetime(const SynthConfig& config, Rng* rng) {
  if (config.pattern_lifetime <= 0) {
    return {0, config.num_timestamps};
  }
  int64_t life = config.pattern_lifetime;
  // Start in [-life/2, T) so instances straddle the horizon edges too.
  int64_t span = config.num_timestamps + life / 2;
  int64_t start = static_cast<int64_t>(rng->UniformInt(
                      static_cast<uint64_t>(span))) -
                  life / 2;
  return {std::max<int64_t>(0, start),
          std::min(config.num_timestamps, start + life)};
}

}  // namespace

TkgDataset GenerateSyntheticTkg(const SynthConfig& config) {
  LOGCL_CHECK_GT(config.num_entities, 1);
  LOGCL_CHECK_GT(config.num_relations, 0);
  LOGCL_CHECK_GT(config.num_timestamps, 2);
  LOGCL_CHECK_GE(config.chain_length, 1);
  LOGCL_CHECK_LE(config.chain_length, config.num_relations);
  LOGCL_CHECK_GE(config.cycle_min, 1);
  LOGCL_CHECK_GE(config.cycle_max, config.cycle_min);
  Rng rng(config.seed);
  EntityDist entities(config);

  std::vector<Quadruple> facts;
  std::unordered_set<Quadruple, QuadrupleHash> dedupe;
  auto emit = [&facts, &dedupe](int64_t s, int64_t r, int64_t o, int64_t t) {
    Quadruple q{s, r, o, t};
    if (dedupe.insert(q).second) facts.push_back(q);
  };

  // 1. Recurring facts: stable triples that re-fire independently per step.
  {
    Rng stream = rng.Split();
    for (int64_t i = 0; i < config.recurring_pool; ++i) {
      Triple triple = RandomTriple(config, entities, &stream);
      Lifetime window = DrawLifetime(config, &stream);
      for (int64_t t = window.begin; t < window.end; ++t) {
        if (stream.Bernoulli(config.recurring_prob)) {
          emit(triple.subject, triple.relation, triple.object, t);
        }
      }
    }
  }

  // 1b. Alternating recurrences: (s, r) fires every `gap` steps, rotating
  // through its object list in order.
  {
    Rng stream = rng.Split();
    for (int64_t i = 0; i < config.alternating_pool; ++i) {
      int64_t subject = entities.Sample(&stream);
      int64_t relation = static_cast<int64_t>(
          stream.UniformInt(static_cast<uint64_t>(config.num_relations)));
      int64_t k = config.alternating_objects_min +
                  static_cast<int64_t>(stream.UniformInt(static_cast<uint64_t>(
                      config.alternating_objects_max -
                      config.alternating_objects_min + 1)));
      std::vector<int64_t> objects;
      while (static_cast<int64_t>(objects.size()) < k) {
        int64_t candidate = entities.Sample(&stream);
        if (candidate != subject &&
            std::find(objects.begin(), objects.end(), candidate) ==
                objects.end()) {
          objects.push_back(candidate);
        }
      }
      int64_t gap =
          config.alternating_gap_min +
          static_cast<int64_t>(stream.UniformInt(static_cast<uint64_t>(
              config.alternating_gap_max - config.alternating_gap_min + 1)));
      Lifetime window = DrawLifetime(config, &stream);
      int64_t phase =
          static_cast<int64_t>(stream.UniformInt(static_cast<uint64_t>(gap)));
      int64_t current = static_cast<int64_t>(
          stream.UniformInt(static_cast<uint64_t>(k)));
      for (int64_t t = window.begin + phase; t < window.end; t += gap) {
        emit(subject, relation, objects[static_cast<size_t>(current)], t);
        if (!stream.Bernoulli(config.alternating_stay_prob) && k > 1) {
          // Rotate to the next pool member. Deterministic rotation keeps the
          // long-run frequency of each object equal, so static/frequency
          // models cannot shortcut the pattern — only the recency signal
          // identifies the current object.
          current = (current + 1) % k;
        }
      }
    }
  }

  // 2. Cyclic facts: fixed period + phase.
  {
    Rng stream = rng.Split();
    for (int64_t i = 0; i < config.num_cyclic; ++i) {
      Triple triple = RandomTriple(config, entities, &stream);
      int64_t period = config.cycle_min +
                       static_cast<int64_t>(stream.UniformInt(
                           static_cast<uint64_t>(config.cycle_max -
                                                 config.cycle_min + 1)));
      int64_t phase =
          static_cast<int64_t>(stream.UniformInt(static_cast<uint64_t>(period)));
      Lifetime window = DrawLifetime(config, &stream);
      for (int64_t t = window.begin + phase; t < window.end; t += period) {
        emit(triple.subject, triple.relation, triple.object, t);
      }
    }
  }

  // 3. Evolving chains: scripted relation sequences over consecutive steps.
  {
    Rng stream = rng.Split();
    // Script library: each script is a distinct relation sequence.
    std::vector<std::vector<int64_t>> scripts(
        static_cast<size_t>(config.num_scripts));
    for (auto& script : scripts) {
      std::vector<int64_t> pool(static_cast<size_t>(config.num_relations));
      for (size_t i = 0; i < pool.size(); ++i) pool[i] = static_cast<int64_t>(i);
      stream.Shuffle(&pool);
      script.assign(pool.begin(), pool.begin() + config.chain_length);
    }
    for (int64_t t = 0; t + config.chain_length <= config.num_timestamps; ++t) {
      int64_t n = Poisson(config.chains_per_timestamp, &stream);
      for (int64_t c = 0; c < n; ++c) {
        const std::vector<int64_t>& script = scripts[static_cast<size_t>(
            stream.UniformInt(static_cast<uint64_t>(config.num_scripts)))];
        Triple bind = RandomTriple(config, entities, &stream);
        for (int64_t i = 0; i < config.chain_length; ++i) {
          emit(bind.subject, script[static_cast<size_t>(i)], bind.object,
               t + i);
        }
      }
    }
  }

  // 4. Noise facts.
  {
    Rng stream = rng.Split();
    for (int64_t t = 0; t < config.num_timestamps; ++t) {
      int64_t n = Poisson(config.noise_per_timestamp, &stream);
      for (int64_t i = 0; i < n; ++i) {
        Triple triple = RandomTriple(config, entities, &stream);
        emit(triple.subject, triple.relation, triple.object, t);
      }
    }
  }

  // Chronological split.
  int64_t train_end = static_cast<int64_t>(
      static_cast<double>(config.num_timestamps) * config.train_fraction);
  int64_t valid_end = static_cast<int64_t>(
      static_cast<double>(config.num_timestamps) *
      (config.train_fraction + config.valid_fraction));
  train_end = std::max<int64_t>(train_end, 1);
  valid_end = std::max(valid_end, train_end + 1);
  LOGCL_CHECK_LT(valid_end, config.num_timestamps);
  std::vector<Quadruple> train, valid, test;
  for (const Quadruple& q : facts) {
    if (q.time < train_end) {
      train.push_back(q);
    } else if (q.time < valid_end) {
      valid.push_back(q);
    } else {
      test.push_back(q);
    }
  }
  return TkgDataset::FromQuadruples(config.name, config.num_entities,
                                    config.num_relations, std::move(train),
                                    std::move(valid), std::move(test));
}

std::vector<double> BuildZipfCdf(int64_t n, double exponent) {
  LOGCL_CHECK_GT(n, 0);
  std::vector<double> cdf(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf[static_cast<size_t>(k)] = total;
  }
  for (double& c : cdf) c /= total;
  cdf.back() = 1.0;  // guard against accumulated rounding at the tail
  return cdf;
}

}  // namespace logcl
