#include "synth/presets.h"

#include "common/logging.h"

namespace logcl {

std::string PaperDatasetName(PaperDataset dataset) {
  switch (dataset) {
    case PaperDataset::kIcews14Like:
      return "ICEWS14-like";
    case PaperDataset::kIcews18Like:
      return "ICEWS18-like";
    case PaperDataset::kIcews0515Like:
      return "ICEWS05-15-like";
    case PaperDataset::kGdeltLike:
      return "GDELT-like";
  }
  LOGCL_CHECK(false) << "bad dataset";
  return "";
}

SynthConfig PresetConfig(PaperDataset dataset) {
  SynthConfig config;
  config.name = PaperDatasetName(dataset);
  switch (dataset) {
    case PaperDataset::kIcews14Like:
      config.seed = 1401;
      config.num_entities = 120;
      config.num_relations = 12;
      config.num_timestamps = 96;
      config.recurring_pool = 90;
      config.recurring_prob = 0.22;
      config.alternating_pool = 170;
      config.num_cyclic = 90;
      config.chains_per_timestamp = 5.0;
      config.noise_per_timestamp = 4.0;
      config.pattern_lifetime = 32;
      break;
    case PaperDataset::kIcews18Like:
      config.seed = 1801;
      config.num_entities = 160;
      config.num_relations = 14;
      config.num_timestamps = 96;
      config.recurring_pool = 130;
      config.recurring_prob = 0.22;
      config.alternating_pool = 230;
      config.num_cyclic = 110;
      config.chains_per_timestamp = 7.0;
      config.noise_per_timestamp = 10.0;
      config.pattern_lifetime = 32;
      break;
    case PaperDataset::kIcews0515Like:
      config.seed = 51501;
      config.num_entities = 180;
      config.num_relations = 12;
      config.num_timestamps = 120;
      config.recurring_pool = 140;
      config.recurring_prob = 0.20;
      config.alternating_pool = 250;
      config.num_cyclic = 130;
      config.chains_per_timestamp = 4.0;
      config.noise_per_timestamp = 4.0;
      config.pattern_lifetime = 50;
      break;
    case PaperDataset::kGdeltLike:
      config.seed = 2013;
      config.num_entities = 110;
      config.num_relations = 10;
      config.num_timestamps = 110;
      config.recurring_pool = 100;
      config.recurring_prob = 0.28;
      config.alternating_pool = 160;
      config.num_cyclic = 80;
      config.chains_per_timestamp = 6.0;
      config.noise_per_timestamp = 16.0;  // GDELT is by far the noisiest
      config.pattern_lifetime = 36;
      break;
  }
  return config;
}

TkgDataset MakePaperDataset(PaperDataset dataset) {
  return GenerateSyntheticTkg(PresetConfig(dataset));
}

std::vector<PaperDataset> AllPaperDatasets() {
  return {PaperDataset::kIcews14Like, PaperDataset::kIcews18Like,
          PaperDataset::kIcews0515Like, PaperDataset::kGdeltLike};
}

}  // namespace logcl
