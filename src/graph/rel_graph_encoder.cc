#include "graph/rel_graph_encoder.h"

#include "common/logging.h"
#include "common/observability.h"
#include "graph/compgcn_layer.h"
#include "graph/kbgat_layer.h"
#include "graph/rgcn_layer.h"
#include "tensor/ops.h"

namespace logcl {

GcnKind GcnKindFromString(const std::string& name) {
  if (name == "rgcn") return GcnKind::kRgcn;
  if (name == "compgcn_sub") return GcnKind::kCompGcnSub;
  if (name == "compgcn_mult") return GcnKind::kCompGcnMult;
  if (name == "kbgat") return GcnKind::kKbgat;
  LOGCL_CHECK(false) << "unknown GCN kind: " << name;
  return GcnKind::kRgcn;
}

std::string GcnKindToString(GcnKind kind) {
  switch (kind) {
    case GcnKind::kRgcn:
      return "rgcn";
    case GcnKind::kCompGcnSub:
      return "compgcn_sub";
    case GcnKind::kCompGcnMult:
      return "compgcn_mult";
    case GcnKind::kKbgat:
      return "kbgat";
  }
  return "?";
}

std::unique_ptr<RelGraphLayer> MakeRelGraphLayer(GcnKind kind, int64_t dim,
                                                 Rng* rng) {
  switch (kind) {
    case GcnKind::kRgcn:
      return std::make_unique<RgcnLayer>(dim, rng);
    case GcnKind::kCompGcnSub:
      return std::make_unique<CompGcnLayer>(dim, CompGcnComposition::kSubtract,
                                            rng);
    case GcnKind::kCompGcnMult:
      return std::make_unique<CompGcnLayer>(dim, CompGcnComposition::kMultiply,
                                            rng);
    case GcnKind::kKbgat:
      return std::make_unique<KbgatLayer>(dim, rng);
  }
  LOGCL_CHECK(false) << "bad GCN kind";
  return nullptr;
}

RelGraphEncoder::RelGraphEncoder(GcnKind kind, int64_t num_layers, int64_t dim,
                                 float dropout, Rng* rng)
    : kind_(kind), dropout_(dropout) {
  LOGCL_CHECK_GE(num_layers, 1);
  for (int64_t i = 0; i < num_layers; ++i) {
    layers_.push_back(MakeRelGraphLayer(kind, dim, rng));
    AddChild(layers_.back().get());
  }
}

Tensor RelGraphEncoder::Forward(const SnapshotGraph& graph, const Tensor& nodes,
                                const Tensor& relations, bool training,
                                Rng* rng) const {
  LOGCL_TRACE_SCOPE("gcn");
  Tensor h = nodes;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(graph, h, relations, training, rng);
    if (i + 1 < layers_.size()) {
      h = ops::Dropout(h, dropout_, training, rng);
    }
  }
  return h;
}

}  // namespace logcl
