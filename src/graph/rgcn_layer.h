// R-GCN aggregation layer, the paper's Eq.4:
//   h_o^{l+1} = RReLU( (1/c_o) * sum_{(s,r) -> o} W1 (h_s + r)  +  W2 h_o )
// (the RE-GCN variant: relation embeddings are added to subject messages
// instead of per-relation weight matrices, keeping parameters O(d^2)).

#ifndef LOGCL_GRAPH_RGCN_LAYER_H_
#define LOGCL_GRAPH_RGCN_LAYER_H_

#include "graph/rel_graph_layer.h"

namespace logcl {

class RgcnLayer : public RelGraphLayer {
 public:
  RgcnLayer(int64_t dim, Rng* rng);

  Tensor Forward(const SnapshotGraph& graph, const Tensor& nodes,
                 const Tensor& relations, bool training,
                 Rng* rng) const override;

 private:
  Tensor w_message_;   // W1
  Tensor w_self_loop_; // W2
};

}  // namespace logcl

#endif  // LOGCL_GRAPH_RGCN_LAYER_H_
