// KBGAT-style attention aggregation (Nathani et al. 2019), the third
// Table V swap-in: per-edge attention logits from the (message, receiver)
// pair, softmax-normalised over each receiver's incoming edges, then an
// attention-weighted sum plus self-loop.
//
//   m_e      = W1 (h_s + r)                       (edge message)
//   logit_e  = LeakyReLU( a^T [m_e || W2 h_o] )
//   alpha_e  = segment-softmax over dst(e)
//   h_o'     = RReLU( sum_e alpha_e * m_e + W2 h_o )

#ifndef LOGCL_GRAPH_KBGAT_LAYER_H_
#define LOGCL_GRAPH_KBGAT_LAYER_H_

#include "graph/rel_graph_layer.h"

namespace logcl {

class KbgatLayer : public RelGraphLayer {
 public:
  KbgatLayer(int64_t dim, Rng* rng);

  Tensor Forward(const SnapshotGraph& graph, const Tensor& nodes,
                 const Tensor& relations, bool training,
                 Rng* rng) const override;

 private:
  Tensor w_message_;
  Tensor w_self_loop_;
  Tensor attention_;  // [2*dim, 1] scoring vector `a`
};

}  // namespace logcl

#endif  // LOGCL_GRAPH_KBGAT_LAYER_H_
