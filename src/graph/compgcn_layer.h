// CompGCN-style aggregation (Vashishth et al. 2020), the Table V swap-ins:
// messages are compositions of subject and relation embeddings,
//   sub  : W1 (h_s - r)
//   mult : W1 (h_s * r)
// aggregated by in-degree mean plus a W2 self-loop, RReLU-activated.
// (The node-aggregation core of CompGCN; per-direction weights and the
// relation-update branch are not needed for the Table V comparison and are
// folded into the shared W1.)

#ifndef LOGCL_GRAPH_COMPGCN_LAYER_H_
#define LOGCL_GRAPH_COMPGCN_LAYER_H_

#include "graph/rel_graph_layer.h"

namespace logcl {

/// Composition operator applied to (h_s, r).
enum class CompGcnComposition { kSubtract, kMultiply };

class CompGcnLayer : public RelGraphLayer {
 public:
  CompGcnLayer(int64_t dim, CompGcnComposition composition, Rng* rng);

  Tensor Forward(const SnapshotGraph& graph, const Tensor& nodes,
                 const Tensor& relations, bool training,
                 Rng* rng) const override;

 private:
  CompGcnComposition composition_;
  Tensor w_message_;
  Tensor w_self_loop_;
};

}  // namespace logcl

#endif  // LOGCL_GRAPH_COMPGCN_LAYER_H_
