#include "graph/rgcn_layer.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace logcl {

RgcnLayer::RgcnLayer(int64_t dim, Rng* rng) {
  w_message_ = AddParameter(Tensor::XavierUniform(Shape{dim, dim}, rng));
  w_self_loop_ = AddParameter(Tensor::XavierUniform(Shape{dim, dim}, rng));
}

Tensor RgcnLayer::Forward(const SnapshotGraph& graph, const Tensor& nodes,
                          const Tensor& relations, bool training,
                          Rng* rng) const {
  LOGCL_CHECK_EQ(nodes.shape().rows(), graph.num_nodes);
  Tensor self = ops::MatMul(nodes, w_self_loop_);
  if (graph.empty()) {
    return ops::RRelu(self, training, rng);
  }
  Tensor aggregated;
  if (ops::FusedMessagePassingEnabled()) {
    aggregated = ops::FusedRelMessagePassing(nodes, relations, w_message_,
                                             graph.src, graph.rel, graph.dst,
                                             graph.DstCsr(),
                                             ops::EdgeCompose::kAdd);
  } else {
    // Composed reference chain; bitwise identical to the fused op.
    Tensor messages = ops::MatMul(
        ops::Add(ops::IndexSelectRows(nodes, graph.src),
                 ops::IndexSelectRows(relations, graph.rel)),
        w_message_);
    aggregated = ops::ScatterMeanRows(messages, graph.DstCsr());
  }
  return ops::RRelu(ops::Add(aggregated, self), training, rng);
}

}  // namespace logcl
