// Abstract relation-aware message-passing layer (pluggable aggregator of
// Eq.4 / Table V: R-GCN, CompGCN-sub, CompGCN-mult, KBGAT).

#ifndef LOGCL_GRAPH_REL_GRAPH_LAYER_H_
#define LOGCL_GRAPH_REL_GRAPH_LAYER_H_

#include "common/rng.h"
#include "graph/snapshot_graph.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace logcl {

/// One message-passing step: nodes [N, d] x relations [R, d] -> nodes [N, d].
class RelGraphLayer : public Module {
 public:
  ~RelGraphLayer() override = default;

  /// `training` toggles stochastic pieces (RReLU slopes, dropout); `rng`
  /// must be non-null when training.
  virtual Tensor Forward(const SnapshotGraph& graph, const Tensor& nodes,
                         const Tensor& relations, bool training,
                         Rng* rng) const = 0;
};

}  // namespace logcl

#endif  // LOGCL_GRAPH_REL_GRAPH_LAYER_H_
