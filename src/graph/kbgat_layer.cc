#include "graph/kbgat_layer.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace logcl {

namespace {
constexpr float kAttentionLeak = 0.2f;
}  // namespace

KbgatLayer::KbgatLayer(int64_t dim, Rng* rng) {
  w_message_ = AddParameter(Tensor::XavierUniform(Shape{dim, dim}, rng));
  w_self_loop_ = AddParameter(Tensor::XavierUniform(Shape{dim, dim}, rng));
  attention_ = AddParameter(Tensor::XavierUniform(Shape{2 * dim, 1}, rng));
}

Tensor KbgatLayer::Forward(const SnapshotGraph& graph, const Tensor& nodes,
                           const Tensor& relations, bool training,
                           Rng* rng) const {
  LOGCL_CHECK_EQ(nodes.shape().rows(), graph.num_nodes);
  Tensor self = ops::MatMul(nodes, w_self_loop_);
  if (graph.empty()) {
    return ops::RRelu(self, training, rng);
  }
  // The attention needs the materialized per-edge messages, so only the
  // gather+compose+matmul front is fused; softmax/scatter read the cached
  // CSR layout. The else-branch is the bitwise-identical composed reference.
  Tensor messages;
  Tensor alpha;
  Tensor aggregated;
  if (ops::FusedMessagePassingEnabled()) {
    messages = ops::EdgeMessages(nodes, relations, w_message_, graph.src,
                                 graph.rel, ops::EdgeCompose::kAdd);
    Tensor receivers = ops::IndexSelectRows(self, graph.dst);
    Tensor logits = ops::LeakyRelu(
        ops::MatMul(ops::ConcatCols({messages, receivers}), attention_),
        kAttentionLeak);
    alpha = ops::SegmentSoftmax(logits, graph.DstCsr());
    Tensor weighted = ops::MulColBroadcast(messages, alpha);
    aggregated = ops::ScatterAddRows(weighted, graph.DstCsr());
  } else {
    messages = ops::MatMul(
        ops::Add(ops::IndexSelectRows(nodes, graph.src),
                 ops::IndexSelectRows(relations, graph.rel)),
        w_message_);
    Tensor receivers = ops::IndexSelectRows(self, graph.dst);
    Tensor logits = ops::LeakyRelu(
        ops::MatMul(ops::ConcatCols({messages, receivers}), attention_),
        kAttentionLeak);
    alpha = ops::SegmentSoftmax(logits, graph.dst, graph.num_nodes);
    Tensor weighted = ops::MulColBroadcast(messages, alpha);
    aggregated = ops::ScatterAddRows(weighted, graph.dst, graph.num_nodes);
  }
  return ops::RRelu(ops::Add(aggregated, self), training, rng);
}

}  // namespace logcl
