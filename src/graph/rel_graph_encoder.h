// Stacked relation-aware GNN encoder with a pluggable aggregator kind —
// the "RGCN_Local" / "RGCN_Global" blocks of the paper (2 layers by
// default, dropout 0.2 between layers, swap-able per Table V).

#ifndef LOGCL_GRAPH_REL_GRAPH_ENCODER_H_
#define LOGCL_GRAPH_REL_GRAPH_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/rel_graph_layer.h"

namespace logcl {

/// Aggregator families evaluated in Table V.
enum class GcnKind {
  kRgcn,
  kCompGcnSub,
  kCompGcnMult,
  kKbgat,
};

/// Parses "rgcn" / "compgcn_sub" / "compgcn_mult" / "kbgat".
GcnKind GcnKindFromString(const std::string& name);
std::string GcnKindToString(GcnKind kind);

/// Creates one layer of the given kind.
std::unique_ptr<RelGraphLayer> MakeRelGraphLayer(GcnKind kind, int64_t dim,
                                                 Rng* rng);

class RelGraphEncoder : public Module {
 public:
  RelGraphEncoder(GcnKind kind, int64_t num_layers, int64_t dim, float dropout,
                  Rng* rng);

  /// Applies the stacked layers; `training` toggles dropout/RReLU noise.
  Tensor Forward(const SnapshotGraph& graph, const Tensor& nodes,
                 const Tensor& relations, bool training, Rng* rng) const;

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  GcnKind kind() const { return kind_; }

 private:
  GcnKind kind_;
  float dropout_;
  std::vector<std::unique_ptr<RelGraphLayer>> layers_;
};

}  // namespace logcl

#endif  // LOGCL_GRAPH_REL_GRAPH_ENCODER_H_
