// SnapshotGraph: edge-list view of one multi-relational graph over a fixed
// node set (a KG snapshot, or LogCL's historical query subgraph).

#ifndef LOGCL_GRAPH_SNAPSHOT_GRAPH_H_
#define LOGCL_GRAPH_SNAPSHOT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "tensor/edge_csr.h"
#include "tkg/quadruple.h"

namespace logcl {

/// Parallel-array edge list. Node ids address rows of the entity embedding
/// matrix; relation ids address the (inverse-augmented) relation matrix.
///
/// The graph lazily builds and caches CSR layouts over its edges (grouped by
/// destination node, and by relation) shared by the fused message-passing
/// kernels, their backwards and the CSR scatter ops. The caches are
/// invalidated by AddEdge and never outlive the graph; lazy builds are not
/// thread-safe (build happens on the single training thread before any
/// parallel kernel reads the layout).
struct SnapshotGraph {
  int64_t num_nodes = 0;
  std::vector<int64_t> src;
  std::vector<int64_t> rel;
  std::vector<int64_t> dst;

  int64_t num_edges() const { return static_cast<int64_t>(src.size()); }
  bool empty() const { return src.empty(); }

  void AddEdge(int64_t s, int64_t r, int64_t d) {
    src.push_back(s);
    rel.push_back(r);
    dst.push_back(d);
    dst_csr_.reset();
    rel_csr_.reset();
  }

  /// CSR over `dst` with num_nodes rows (message aggregation layout).
  const EdgeCsrPtr& DstCsr() const;
  /// CSR over `rel` with `num_relations` rows (Eq.6 per-relation pooling).
  const EdgeCsrPtr& RelCsr(int64_t num_relations) const;

  /// Builds a graph from facts' (s, r, o); timestamps are ignored (one
  /// snapshot = concurrent facts). Pass inverse-augmented facts for
  /// bidirectional message passing.
  static SnapshotGraph FromFacts(const std::vector<Quadruple>& facts,
                                 int64_t num_nodes);

  /// FromFacts over `facts` plus their inverses (object, r + num_base,
  /// subject) without materializing the doubled quadruple list.
  static SnapshotGraph FromFactsWithInverses(
      const std::vector<Quadruple>& facts, int64_t num_nodes,
      int64_t num_base_relations);

 private:
  mutable EdgeCsrPtr dst_csr_;
  mutable EdgeCsrPtr rel_csr_;
};

}  // namespace logcl

#endif  // LOGCL_GRAPH_SNAPSHOT_GRAPH_H_
