// SnapshotGraph: edge-list view of one multi-relational graph over a fixed
// node set (a KG snapshot, or LogCL's historical query subgraph).

#ifndef LOGCL_GRAPH_SNAPSHOT_GRAPH_H_
#define LOGCL_GRAPH_SNAPSHOT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "tkg/quadruple.h"

namespace logcl {

/// Parallel-array edge list. Node ids address rows of the entity embedding
/// matrix; relation ids address the (inverse-augmented) relation matrix.
struct SnapshotGraph {
  int64_t num_nodes = 0;
  std::vector<int64_t> src;
  std::vector<int64_t> rel;
  std::vector<int64_t> dst;

  int64_t num_edges() const { return static_cast<int64_t>(src.size()); }
  bool empty() const { return src.empty(); }

  void AddEdge(int64_t s, int64_t r, int64_t d) {
    src.push_back(s);
    rel.push_back(r);
    dst.push_back(d);
  }

  /// Builds a graph from facts' (s, r, o); timestamps are ignored (one
  /// snapshot = concurrent facts). Pass inverse-augmented facts for
  /// bidirectional message passing.
  static SnapshotGraph FromFacts(const std::vector<Quadruple>& facts,
                                 int64_t num_nodes);
};

}  // namespace logcl

#endif  // LOGCL_GRAPH_SNAPSHOT_GRAPH_H_
