#include "graph/snapshot_graph.h"

#include "common/logging.h"

namespace logcl {

const EdgeCsrPtr& SnapshotGraph::DstCsr() const {
  if (dst_csr_ == nullptr || dst_csr_->num_edges != num_edges()) {
    dst_csr_ = EdgeCsr::Build(dst, num_nodes);
  }
  return dst_csr_;
}

const EdgeCsrPtr& SnapshotGraph::RelCsr(int64_t num_relations) const {
  if (rel_csr_ == nullptr || rel_csr_->num_edges != num_edges() ||
      rel_csr_->num_rows != num_relations) {
    rel_csr_ = EdgeCsr::Build(rel, num_relations);
  }
  return rel_csr_;
}

SnapshotGraph SnapshotGraph::FromFacts(const std::vector<Quadruple>& facts,
                                       int64_t num_nodes) {
  LOGCL_CHECK_GT(num_nodes, 0);
  SnapshotGraph graph;
  graph.num_nodes = num_nodes;
  graph.src.reserve(facts.size());
  graph.rel.reserve(facts.size());
  graph.dst.reserve(facts.size());
  for (const Quadruple& q : facts) {
    LOGCL_CHECK_LT(q.subject, num_nodes);
    LOGCL_CHECK_LT(q.object, num_nodes);
    graph.AddEdge(q.subject, q.relation, q.object);
  }
  return graph;
}

SnapshotGraph SnapshotGraph::FromFactsWithInverses(
    const std::vector<Quadruple>& facts, int64_t num_nodes,
    int64_t num_base_relations) {
  LOGCL_CHECK_GT(num_nodes, 0);
  SnapshotGraph graph;
  graph.num_nodes = num_nodes;
  graph.src.reserve(facts.size() * 2);
  graph.rel.reserve(facts.size() * 2);
  graph.dst.reserve(facts.size() * 2);
  // Same edge order as FromFacts(WithInverses(facts)): originals first,
  // then the inverses.
  for (const Quadruple& q : facts) {
    LOGCL_CHECK_LT(q.subject, num_nodes);
    LOGCL_CHECK_LT(q.object, num_nodes);
    graph.AddEdge(q.subject, q.relation, q.object);
  }
  for (const Quadruple& q : facts) {
    graph.AddEdge(q.object, InverseRelation(q.relation, num_base_relations),
                  q.subject);
  }
  return graph;
}

}  // namespace logcl
