#include "graph/snapshot_graph.h"

#include "common/logging.h"

namespace logcl {

SnapshotGraph SnapshotGraph::FromFacts(const std::vector<Quadruple>& facts,
                                       int64_t num_nodes) {
  LOGCL_CHECK_GT(num_nodes, 0);
  SnapshotGraph graph;
  graph.num_nodes = num_nodes;
  graph.src.reserve(facts.size());
  graph.rel.reserve(facts.size());
  graph.dst.reserve(facts.size());
  for (const Quadruple& q : facts) {
    LOGCL_CHECK_LT(q.subject, num_nodes);
    LOGCL_CHECK_LT(q.object, num_nodes);
    graph.AddEdge(q.subject, q.relation, q.object);
  }
  return graph;
}

}  // namespace logcl
