#include "graph/compgcn_layer.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace logcl {

CompGcnLayer::CompGcnLayer(int64_t dim, CompGcnComposition composition,
                           Rng* rng)
    : composition_(composition) {
  w_message_ = AddParameter(Tensor::XavierUniform(Shape{dim, dim}, rng));
  w_self_loop_ = AddParameter(Tensor::XavierUniform(Shape{dim, dim}, rng));
}

Tensor CompGcnLayer::Forward(const SnapshotGraph& graph, const Tensor& nodes,
                             const Tensor& relations, bool training,
                             Rng* rng) const {
  LOGCL_CHECK_EQ(nodes.shape().rows(), graph.num_nodes);
  Tensor self = ops::MatMul(nodes, w_self_loop_);
  if (graph.empty()) {
    return ops::RRelu(self, training, rng);
  }
  ops::EdgeCompose compose = composition_ == CompGcnComposition::kSubtract
                                 ? ops::EdgeCompose::kSubtract
                                 : ops::EdgeCompose::kMultiply;
  Tensor aggregated;
  if (ops::FusedMessagePassingEnabled()) {
    aggregated = ops::FusedRelMessagePassing(nodes, relations, w_message_,
                                             graph.src, graph.rel, graph.dst,
                                             graph.DstCsr(), compose);
  } else {
    // Composed reference chain; bitwise identical to the fused op.
    Tensor subjects = ops::IndexSelectRows(nodes, graph.src);
    Tensor rels = ops::IndexSelectRows(relations, graph.rel);
    Tensor composed = composition_ == CompGcnComposition::kSubtract
                          ? ops::Sub(subjects, rels)
                          : ops::Mul(subjects, rels);
    Tensor messages = ops::MatMul(composed, w_message_);
    aggregated = ops::ScatterMeanRows(messages, graph.DstCsr());
  }
  return ops::RRelu(ops::Add(aggregated, self), training, rng);
}

}  // namespace logcl
