// Custom-dataset walkthrough: build a TKG programmatically (or from TSV
// files on disk), inspect its history indexes, and compare a frequency
// baseline with LogCL on it. Demonstrates the data-layer API a downstream
// user would touch first.

#include <cstdio>
#include <vector>

#include "baselines/cygnet.h"
#include "core/logcl_model.h"
#include "core/trainer.h"
#include "tkg/dataset.h"
#include "tkg/filters.h"
#include "tkg/history_index.h"
#include "tkg/vocabulary.h"

int main() {
  using namespace logcl;  // NOLINT: example brevity

  // 1. Name your entities/relations with a Vocabulary, then express facts
  //    as dense ids. (TkgDataset::LoadTsv reads the standard benchmark
  //    format "s r o t" directly.)
  Vocabulary entities;
  Vocabulary relations;
  int64_t china = entities.GetOrAdd("china");
  int64_t iran = entities.GetOrAdd("iran");
  int64_t oman = entities.GetOrAdd("oman");
  int64_t un = entities.GetOrAdd("united_nations");
  int64_t consult = relations.GetOrAdd("consult");
  int64_t cooperate = relations.GetOrAdd("cooperate");

  // A weekly cooperation pattern plus some consultations.
  std::vector<Quadruple> train;
  for (int64_t week = 0; week < 16; ++week) {
    train.push_back({china, cooperate, week % 2 == 0 ? iran : oman, week});
    train.push_back({iran, consult, un, week});
    if (week % 4 == 0) train.push_back({oman, consult, china, week});
  }
  std::vector<Quadruple> valid = {{china, cooperate, china == 0 ? iran : iran, 16},
                                  {iran, consult, un, 16}};
  std::vector<Quadruple> test = {{china, cooperate, oman, 17},
                                 {iran, consult, un, 17}};
  TkgDataset dataset = TkgDataset::FromQuadruples(
      "diplomacy", entities.size(), relations.size(), train, valid, test);
  std::printf("dataset: %s\n", dataset.Stats().ToString().c_str());

  // 2. Inspect the global history the models will exploit.
  HistoryIndex history(dataset);
  std::printf("historical partners of (china, cooperate) before t=17:");
  for (int64_t object : history.ObjectsBefore(china, cooperate, 17)) {
    std::printf(" %s", entities.Name(object).c_str());
  }
  std::printf("\n");

  // 3. Train a frequency-style baseline and LogCL; compare.
  TimeAwareFilter filter(dataset);
  OfflineOptions opts;
  opts.epochs = 30;
  opts.learning_rate = 5e-3f;

  CyGNet baseline(&dataset, /*dim=*/16);
  EvalResult baseline_result = TrainAndEvaluate(&baseline, &filter, opts);
  std::printf("CyGNet: %s\n", baseline_result.ToString().c_str());

  LogClConfig config;
  config.embedding_dim = 16;
  config.local.history_length = 3;
  config.decoder.num_kernels = 8;
  LogClModel model(&dataset, config);
  EvalResult logcl_result = TrainAndEvaluate(&model, &filter, opts);
  std::printf("LogCL:  %s\n", logcl_result.ToString().c_str());

  // 4. What does LogCL predict china cooperates with at t=17? The weekly
  //    alternation (iran, oman, iran, ...) makes oman the right answer.
  std::printf("china cooperates with (t=17):\n");
  for (const auto& [entity, prob] :
       model.PredictTopK({china, cooperate, oman, 17}, 3)) {
    std::printf("  %-16s p=%.3f\n", entities.Name(entity).c_str(), prob);
  }
  return 0;
}
