// Serving demo: the train -> checkpoint -> deploy -> advance lifecycle.
//
// A model is trained briefly and checkpointed; a fresh "deployment" process
// restores the weights and wraps them in an InferenceEngine, which freezes
// the local evolution once per horizon and micro-batches concurrent
// queries. When the horizon's events arrive, Advance() folds them into the
// next snapshot without pausing serving.

#include <cstdio>
#include <filesystem>

#include "core/logcl_model.h"
#include "core/trainer.h"
#include "serve/inference_engine.h"
#include "synth/presets.h"
#include "tensor/serialization.h"
#include "tkg/filters.h"

int main() {
  using namespace logcl;  // NOLINT: example brevity

  TkgDataset dataset = MakePaperDataset(PaperDataset::kIcews14Like);
  std::printf("dataset: %s\n", dataset.Stats().ToString().c_str());

  LogClConfig config;
  config.embedding_dim = 32;

  // --- Train and checkpoint. ---
  LogClModel trainer_model(&dataset, config);
  TimeAwareFilter filter(dataset);
  OfflineOptions offline;
  offline.epochs = 2;
  offline.learning_rate = 3e-3f;
  EvalResult trained = TrainAndEvaluate(&trainer_model, &filter, offline);
  std::printf("trained:  %s\n", trained.ToString().c_str());
  std::string checkpoint =
      (std::filesystem::temp_directory_path() / "serve_demo_ckpt.bin")
          .string();
  if (!SaveParameters(trainer_model.Parameters(), checkpoint).ok()) {
    std::printf("checkpoint save failed\n");
    return 1;
  }

  // --- Deploy: fresh model + restored weights + engine. ---
  LogClModel deployed(&dataset, config);
  if (!LoadModelCheckpoint(&deployed, checkpoint).ok()) {
    std::printf("checkpoint load failed\n");
    return 1;
  }
  std::filesystem::remove(checkpoint);

  int64_t horizon = dataset.num_timestamps() - 2;
  EngineOptions options;
  options.max_batch_size = 16;
  InferenceEngine engine(&deployed, horizon, options);
  std::printf("serving at horizon t=%lld\n",
              static_cast<long long>(engine.time()));

  // --- Answer a few queries drawn from the horizon's real events. ---
  const std::vector<Quadruple>& day = dataset.FactsAt(horizon);
  for (size_t i = 0; i < 3 && i < day.size(); ++i) {
    const Quadruple& fact = day[i];
    auto top = engine.TopK({fact.subject, fact.relation}, 3);
    std::printf("query (s=%lld, r=%lld, ?):",
                static_cast<long long>(fact.subject),
                static_cast<long long>(fact.relation));
    for (const auto& [entity, prob] : top) {
      std::printf("  e%lld %.3f", static_cast<long long>(entity), prob);
    }
    std::printf("   (actual: e%lld)\n", static_cast<long long>(fact.object));
  }

  // --- The horizon's events arrive: advance and keep serving. ---
  engine.Advance(dataset.FactsAt(horizon));
  std::printf("advanced to horizon t=%lld\n",
              static_cast<long long>(engine.time()));
  const std::vector<Quadruple>& next_day = dataset.FactsAt(horizon + 1);
  if (!next_day.empty()) {
    const Quadruple& fact = next_day[0];
    auto top = engine.TopK({fact.subject, fact.relation}, 3);
    std::printf("query (s=%lld, r=%lld, ?):",
                static_cast<long long>(fact.subject),
                static_cast<long long>(fact.relation));
    for (const auto& [entity, prob] : top) {
      std::printf("  e%lld %.3f", static_cast<long long>(entity), prob);
    }
    std::printf("   (actual: e%lld)\n", static_cast<long long>(fact.object));
  }

  std::printf("engine counters: %s\n", engine.Snapshot().ToString().c_str());
  return 0;
}
