// Quickstart: generate a small temporal knowledge graph, train LogCL for a
// few epochs, evaluate with the time-aware filtered protocol, and inspect a
// prediction.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/logcl_model.h"
#include "core/trainer.h"
#include "synth/generator.h"
#include "tkg/filters.h"

int main() {
  using namespace logcl;  // NOLINT: example brevity

  // 1. Data: a synthetic TKG with repetition, cyclic and evolving patterns.
  //    (Use TkgDataset::LoadTsv(dir, name) for ICEWS-format files.)
  SynthConfig data_config;
  data_config.name = "quickstart";
  data_config.seed = 42;
  data_config.num_entities = 60;
  data_config.num_relations = 8;
  data_config.num_timestamps = 50;
  TkgDataset dataset = GenerateSyntheticTkg(data_config);
  std::printf("dataset: %s\n", dataset.Stats().ToString().c_str());

  // 2. Model: LogCL with default paper-style settings, scaled-down size.
  LogClConfig config;
  config.embedding_dim = 32;
  config.local.history_length = 5;  // m
  config.lambda = 0.9f;             // local/global trade-off (Eq.19)
  LogClModel model(&dataset, config);
  std::printf("model: %s with %lld parameters\n", model.name().c_str(),
              static_cast<long long>(model.NumParameterElements()));

  // 3. Train + evaluate (time-aware filtered MRR / Hits@k).
  TimeAwareFilter filter(dataset);
  OfflineOptions train;
  train.epochs = 6;
  train.learning_rate = 3e-3f;
  train.verbose = true;
  EvalResult result = TrainAndEvaluate(&model, &filter, train);
  std::printf("test results: %s\n", result.ToString().c_str());

  // 4. Ask the model a question: given a test fact (s, r, ?, t), what does
  //    it predict?
  const Quadruple& sample = dataset.test().front();
  std::printf("query (E%lld, R%lld, ?, t=%lld), true answer E%lld\n",
              static_cast<long long>(sample.subject),
              static_cast<long long>(sample.relation),
              static_cast<long long>(sample.time),
              static_cast<long long>(sample.object));
  for (const auto& [entity, prob] : model.PredictTopK(sample, 5)) {
    std::printf("  E%-4lld p=%.3f%s\n", static_cast<long long>(entity), prob,
                entity == sample.object ? "   <-- answer" : "");
  }
  return 0;
}
