// Online forecasting demo (Section IV.H): a deployed TKG forecaster keeps
// receiving new event snapshots. This example replays the test period
// chronologically — each day is first predicted, then absorbed with one
// gradient update — and compares against the frozen offline model.

#include <cstdio>

#include "core/logcl_model.h"
#include "core/trainer.h"
#include "synth/presets.h"
#include "tkg/filters.h"

int main() {
  using namespace logcl;  // NOLINT: example brevity

  TkgDataset dataset = MakePaperDataset(PaperDataset::kIcews14Like);
  TimeAwareFilter filter(dataset);
  std::printf("dataset: %s\n", dataset.Stats().ToString().c_str());

  LogClConfig config;
  config.embedding_dim = 32;

  // Offline: train once, freeze, evaluate the whole test period.
  LogClModel offline_model(&dataset, config);
  OfflineOptions offline;
  offline.epochs = 6;
  offline.learning_rate = 3e-3f;
  EvalResult offline_result =
      TrainAndEvaluate(&offline_model, &filter, offline);
  std::printf("offline:  %s\n", offline_result.ToString().c_str());

  // Online: same pretraining, but keep learning as test snapshots arrive.
  LogClModel online_model(&dataset, config);
  OnlineOptions online;
  online.offline_epochs = offline.epochs;
  online.learning_rate = 3e-3f;
  online.updates_per_timestamp = 1;
  EvalResult online_result =
      TrainAndEvaluateOnline(&online_model, &filter, online);
  std::printf("online:   %s\n", online_result.ToString().c_str());

  std::printf(
      "\nExpected: the online model outperforms the frozen one because each\n"
      "evaluated snapshot immediately improves subsequent predictions\n"
      "(paper Fig.10).\n");
  return 0;
}
