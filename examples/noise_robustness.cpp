// Noise-robustness demo: the paper's second headline claim is that the
// local-global query contrast module makes LogCL robust to contaminated
// inputs. This example trains LogCL with and without the contrast module
// under increasing Gaussian noise on the entity embeddings and prints the
// degradation curves (a miniature of Fig.5).

#include <cstdio>

#include "core/logcl_model.h"
#include "core/trainer.h"
#include "synth/presets.h"
#include "tkg/filters.h"

int main() {
  using namespace logcl;  // NOLINT: example brevity

  TkgDataset dataset = MakePaperDataset(PaperDataset::kIcews14Like);
  TimeAwareFilter filter(dataset);
  std::printf("dataset: %s\n\n", dataset.Stats().ToString().c_str());
  std::printf("%-16s %8s %10s %10s\n", "variant", "sigma", "MRR", "Hits@1");

  for (bool use_contrast : {true, false}) {
    double clean_mrr = 0.0;
    for (float sigma : {0.0f, 1.0f, 2.0f}) {
      LogClConfig config;
      config.embedding_dim = 32;
      config.use_contrast = use_contrast;
      config.noise_stddev = sigma;  // N(0, sigma^2) on entity embeddings
      LogClModel model(&dataset, config);
      OfflineOptions train;
      train.epochs = 5;
      train.learning_rate = 3e-3f;
      EvalResult result = TrainAndEvaluate(&model, &filter, train);
      if (sigma == 0.0f) clean_mrr = result.mrr;
      std::printf("%-16s %8.1f %10.2f %10.2f",
                  use_contrast ? "LogCL" : "LogCL-w/o-cl", sigma, result.mrr,
                  result.hits1);
      if (sigma > 0.0f && clean_mrr > 0.0) {
        std::printf("   (%.1f%% of clean)", 100.0 * result.mrr / clean_mrr);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected: both variants degrade with noise, but the contrastive\n"
      "variant retains more of its clean performance (paper Fig.5).\n");
  return 0;
}
