// logcl_cli: end-to-end command-line driver — train any zoo model on a
// preset or on-disk dataset, evaluate it (offline or online protocol), and
// save/restore checkpoints.
//
// Examples:
//   logcl_cli --dataset icews14 --model LogCL --epochs 10 --save model.ckpt
//   logcl_cli --dataset /data/ICEWS14 --model TiRGN --epochs 8
//   logcl_cli --dataset icews18 --model LogCL --load model.ckpt --eval-only
//   logcl_cli --dataset gdelt --model CEN --online

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "baselines/model_zoo.h"
#include "common/observability.h"
#include "core/trainer.h"
#include "synth/presets.h"
#include "tensor/serialization.h"
#include "tkg/filters.h"

namespace {

void Usage() {
  std::printf(
      "usage: logcl_cli [options]\n"
      "  --dataset NAME   icews14 | icews18 | icews0515 | gdelt (synthetic\n"
      "                   stand-ins), or a directory with train/valid/test.txt\n"
      "  --model NAME     zoo model (default LogCL); --list to enumerate\n"
      "  --epochs N       training epochs (default: per-model zoo default)\n"
      "  --lr F           learning rate (default 3e-3)\n"
      "  --dim N          embedding size (default 32)\n"
      "  --history N      local history length m (default 5)\n"
      "  --seed N         RNG seed (default 7)\n"
      "  --save PATH      write a checkpoint after training\n"
      "  --load PATH      load a checkpoint before training/eval\n"
      "  --eval-only      skip training\n"
      "  --online         use the online evaluation protocol (Fig.10)\n"
      "  --raw            additionally report raw (unfiltered) metrics\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logcl;  // NOLINT: tool brevity
  EnableMetricsDumpAtExit();  // honour LOGCL_METRICS_DUMP[_FILE]

  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    }
    if (arg == "--list") {
      for (const ZooEntry& entry : ModelZooEntries()) {
        std::printf("%s\n", entry.name.c_str());
      }
      return 0;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      Usage();
      return 1;
    }
    std::string key = arg.substr(2);
    if (key == "eval-only" || key == "online" || key == "raw") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    } else {
      std::fprintf(stderr, "missing value for --%s\n", key.c_str());
      return 1;
    }
  }

  auto flag = [&flags](const std::string& key, const std::string& fallback) {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  };

  // Dataset.
  std::string dataset_name = flag("dataset", "icews14");
  TkgDataset dataset = [&]() -> TkgDataset {
    if (dataset_name == "icews14") {
      return MakePaperDataset(PaperDataset::kIcews14Like);
    }
    if (dataset_name == "icews18") {
      return MakePaperDataset(PaperDataset::kIcews18Like);
    }
    if (dataset_name == "icews0515") {
      return MakePaperDataset(PaperDataset::kIcews0515Like);
    }
    if (dataset_name == "gdelt") {
      return MakePaperDataset(PaperDataset::kGdeltLike);
    }
    Result<TkgDataset> loaded = TkgDataset::LoadTsv(dataset_name, dataset_name);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load dataset: %s\n",
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(loaded).value();
  }();
  std::printf("dataset: %s\n", dataset.Stats().ToString().c_str());

  // Model.
  ZooOptions zoo;
  zoo.embedding_dim = std::atoll(flag("dim", "32").c_str());
  zoo.history_length = std::atoll(flag("history", "5").c_str());
  zoo.seed = static_cast<uint64_t>(std::atoll(flag("seed", "7").c_str()));
  std::string model_name = flag("model", "LogCL");
  std::unique_ptr<TkgModel> model = MakeZooModel(model_name, &dataset, zoo);
  std::printf("model: %s (%lld parameters)\n", model->name().c_str(),
              static_cast<long long>(model->NumParameterElements()));

  if (flags.contains("load")) {
    std::vector<Tensor> parameters = model->Parameters();
    Status status = LoadParameters(flags["load"], &parameters);
    if (!status.ok()) {
      std::fprintf(stderr, "checkpoint load failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("loaded checkpoint %s\n", flags["load"].c_str());
  }

  TimeAwareFilter filter(dataset);
  int64_t epochs = flags.contains("epochs")
                       ? std::atoll(flags["epochs"].c_str())
                       : DefaultEpochsFor(model_name);
  float lr = std::strtof(flag("lr", "0.003").c_str(), nullptr);

  EvalResult result;
  if (flags.contains("online")) {
    OnlineOptions options;
    options.offline_epochs = flags.contains("eval-only") ? 0 : epochs;
    options.learning_rate = lr;
    options.verbose = true;
    result = TrainAndEvaluateOnline(model.get(), &filter, options);
  } else {
    OfflineOptions options;
    options.epochs = flags.contains("eval-only") ? 0 : epochs;
    options.learning_rate = lr;
    options.verbose = true;
    result = TrainAndEvaluate(model.get(), &filter, options);
  }
  std::printf("time-aware filtered: %s\n", result.ToString().c_str());
  if (flags.contains("raw")) {
    EvalResult raw = model->Evaluate(Split::kTest, nullptr);
    std::printf("raw (unfiltered):    %s\n", raw.ToString().c_str());
  }

  if (flags.contains("save")) {
    Status status = SaveParameters(model->Parameters(), flags["save"]);
    if (!status.ok()) {
      std::fprintf(stderr, "checkpoint save failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("saved checkpoint %s\n", flags["save"].c_str());
  }
  return 0;
}
